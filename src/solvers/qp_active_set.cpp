#include "solvers/qp_active_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "solvers/lp_simplex.hpp"
#include "util/error.hpp"

namespace gridctl::solvers {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Internal row form: a'x (= or <=) b, remembering which QpProblem row and
// sign it came from so duals can be reported per original constraint.
struct Row {
  Vector a;
  double b = 0.0;
  bool equality = false;
  std::size_t source = 0;  // original constraint index
  double sign = 1.0;       // +1: upper bound row, -1: lower bound row
};

std::vector<Row> expand_rows(const QpProblem& prob) {
  std::vector<Row> rows;
  for (std::size_t i = 0; i < prob.num_constraints(); ++i) {
    const Vector ai = prob.a.row_vector(i);
    if (prob.lower[i] == prob.upper[i]) {
      rows.push_back({ai, prob.upper[i], true, i, +1.0});
      continue;
    }
    if (std::isfinite(prob.upper[i])) {
      rows.push_back({ai, prob.upper[i], false, i, +1.0});
    }
    if (std::isfinite(prob.lower[i])) {
      rows.push_back({linalg::scale(-1.0, ai), -prob.lower[i], false, i, -1.0});
    }
  }
  return rows;
}

// Phase-1 LP: find any point satisfying the rows, with free variables
// split as x = xp - xn (xp, xn >= 0).
Vector find_feasible_point(const std::vector<Row>& rows, std::size_t n) {
  std::size_t n_eq = 0, n_ub = 0;
  for (const Row& row : rows) (row.equality ? n_eq : n_ub)++;
  LpProblem lp;
  lp.c.assign(2 * n, 0.0);
  lp.a_eq = Matrix(n_eq, 2 * n);
  lp.b_eq.assign(n_eq, 0.0);
  lp.a_ub = Matrix(n_ub, 2 * n);
  lp.b_ub.assign(n_ub, 0.0);
  std::size_t ie = 0, iu = 0;
  for (const Row& row : rows) {
    Matrix& target = row.equality ? lp.a_eq : lp.a_ub;
    const std::size_t r = row.equality ? ie : iu;
    for (std::size_t j = 0; j < n; ++j) {
      target(r, j) = row.a[j];
      target(r, n + j) = -row.a[j];
    }
    (row.equality ? lp.b_eq[ie] : lp.b_ub[iu]) = row.b;
    (row.equality ? ie : iu)++;
  }
  const LpResult lp_result = solve_lp(lp);
  if (lp_result.status != LpStatus::kOptimal) return {};
  Vector x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = lp_result.x[j] - lp_result.x[n + j];
  }
  return x;
}

// Solve the equality-constrained subproblem
//   min ½ pᵀ P p + gᵀ p   s.t.  A_W p = 0
// via the KKT system; returns (p, lambda).
struct EqQpSolution {
  Vector p;
  Vector lambda;
  bool ok = false;
};

EqQpSolution solve_eq_qp(const Matrix& p_mat, const Vector& g,
                         const std::vector<const Row*>& working) {
  const std::size_t n = g.size();
  const std::size_t mw = working.size();
  Matrix kkt(n + mw, n + mw);
  kkt.set_block(0, 0, p_mat);
  for (std::size_t i = 0; i < mw; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      kkt(j, n + i) = working[i]->a[j];
      kkt(n + i, j) = working[i]->a[j];
    }
  }
  Vector rhs(n + mw, 0.0);
  for (std::size_t j = 0; j < n; ++j) rhs[j] = -g[j];
  const linalg::Lu factor(kkt);
  EqQpSolution out;
  if (factor.singular()) return out;
  const Vector sol = factor.solve(rhs);
  out.p.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
  out.lambda.assign(sol.begin() + static_cast<std::ptrdiff_t>(n), sol.end());
  out.ok = true;
  return out;
}

// Would appending `candidate` keep the working-set rows independent?
bool keeps_rows_independent(const std::vector<const Row*>& working,
                            const Row& candidate, std::size_t n) {
  Matrix stacked(working.size() + 1, n);
  for (std::size_t i = 0; i < working.size(); ++i) {
    for (std::size_t j = 0; j < n; ++j) stacked(i, j) = working[i]->a[j];
  }
  for (std::size_t j = 0; j < n; ++j) stacked(working.size(), j) = candidate.a[j];
  return linalg::rank(stacked) == working.size() + 1;
}

}  // namespace

QpResult solve_qp_active_set(const QpProblem& problem,
                             const ActiveSetOptions& options,
                             const Vector& x0) {
  problem.validate();
  const std::size_t n = problem.num_vars();
  const std::vector<Row> rows = expand_rows(problem);

  QpResult result;
  Vector x;
  if (x0.size() == n) {
    x = x0;
  } else {
    x = find_feasible_point(rows, n);
    if (x.empty()) {
      result.status = QpStatus::kInfeasible;
      return result;
    }
  }

  const double tol = options.tolerance;
  // Working set: all equality rows plus inequalities active at x.
  std::vector<const Row*> working;
  std::vector<bool> in_working(rows.size(), false);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double slack = rows[i].b - linalg::dot(rows[i].a, x);
    const bool activate =
        rows[i].equality || std::abs(slack) <= tol * std::max(1.0, std::abs(rows[i].b));
    if (activate && keeps_rows_independent(working, rows[i], n)) {
      working.push_back(&rows[i]);
      in_working[i] = true;
    }
  }

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    // Gradient at x.
    Vector g = problem.p * x;
    for (std::size_t j = 0; j < n; ++j) g[j] += problem.q[j];

    const EqQpSolution sub = solve_eq_qp(problem.p, g, working);
    if (!sub.ok) {
      throw NumericalError("solve_qp_active_set: singular KKT system");
    }

    if (linalg::norm_inf(sub.p) <= tol) {
      // Stationary on the working set: check inequality multipliers.
      // KKT sign convention: gradient + Σ lambda_i a_i = 0 with
      // lambda_i >= 0 for active <= rows. solve_eq_qp returns lambda for
      // g + A_Wᵀ lambda = 0 directly.
      double most_negative = -tol;
      std::size_t drop_index = working.size();
      for (std::size_t i = 0; i < working.size(); ++i) {
        if (working[i]->equality) continue;
        if (sub.lambda[i] < most_negative) {
          most_negative = sub.lambda[i];
          drop_index = i;
        }
      }
      if (drop_index == working.size()) {
        result.status = QpStatus::kOptimal;
        // Report duals per original constraint row.
        result.y.assign(problem.num_constraints(), 0.0);
        for (std::size_t i = 0; i < working.size(); ++i) {
          result.y[working[i]->source] += working[i]->sign * sub.lambda[i];
        }
        break;
      }
      // Release the most negative inequality and continue.
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (&rows[i] == working[drop_index]) in_working[i] = false;
      }
      working.erase(working.begin() + static_cast<std::ptrdiff_t>(drop_index));
      continue;
    }

    // Line search toward x + p against the inactive inequalities.
    double alpha = 1.0;
    std::size_t blocking = rows.size();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (in_working[i] || rows[i].equality) continue;
      const double ap = linalg::dot(rows[i].a, sub.p);
      if (ap > tol) {
        const double slack = rows[i].b - linalg::dot(rows[i].a, x);
        const double step = slack / ap;
        if (step < alpha - tol) {
          alpha = std::max(step, 0.0);
          blocking = i;
        }
      }
    }
    linalg::axpy(alpha, sub.p, x);
    if (blocking != rows.size() &&
        keeps_rows_independent(working, rows[blocking], n)) {
      working.push_back(&rows[blocking]);
      in_working[blocking] = true;
    }
  }

  result.x = std::move(x);
  result.objective = problem.objective(result.x);
  if (result.status != QpStatus::kOptimal &&
      result.iterations >= options.max_iterations) {
    result.status = QpStatus::kMaxIterations;
  }
  result.primal_residual = problem.max_violation(result.x);
  return result;
}

}  // namespace gridctl::solvers
