// Primal active-set method for strictly convex QPs
// (Nocedal & Wright, "Numerical Optimization", Algorithm 16.3).
//
// Requires P to be positive definite (gridctl's MPC Hessians are: the
// input-move penalty R adds a strictly positive diagonal). A feasible
// starting point is found with a phase-1 LP unless the caller supplies
// one. Serves as the independent cross-check for the ADMM solver and as
// a high-accuracy option for small problems.
#pragma once

#include "solvers/qp.hpp"

namespace gridctl::solvers {

struct ActiveSetOptions {
  std::size_t max_iterations = 1000;
  double tolerance = 1e-9;
};

// Solve; `x0` must be feasible when non-empty, otherwise a phase-1 LP
// finds a starting vertex.
QpResult solve_qp_active_set(const QpProblem& problem,
                             const ActiveSetOptions& options = {},
                             const linalg::Vector& x0 = {});

}  // namespace gridctl::solvers
