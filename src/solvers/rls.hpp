// Recursive Least Squares with exponential forgetting.
//
// Estimates theta in  y(k) = phi(k)ᵀ theta + e(k)  online. The workload
// predictor (paper Sec. III-D) uses this to fit the AR(p) coefficients
// of the arrival process; ref. [18] of the paper describes the same
// estimator in a utilization-control setting.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::solvers {

class RecursiveLeastSquares {
 public:
  // `dimension` is the regressor length; `forgetting` in (0, 1] weights
  // past data by forgetting^age; `initial_covariance` scales the initial
  // P = c·I (large c = weak prior on theta = 0).
  explicit RecursiveLeastSquares(std::size_t dimension,
                                 double forgetting = 0.98,
                                 double initial_covariance = 1e6);

  // Incorporate one observation pair (phi, y). Returns the a-priori
  // prediction error y - phiᵀtheta (before the update).
  double update(const linalg::Vector& phi, double y);

  // Predicted output for a regressor.
  double predict(const linalg::Vector& phi) const;

  const linalg::Vector& theta() const { return theta_; }
  const linalg::Matrix& covariance() const { return p_; }
  std::size_t updates() const { return updates_; }

  // Reset the estimate and covariance (e.g., after a regime change).
  void reset();

  // Overwrite the full estimator state (checkpoint restore). The
  // restored estimator continues bit-identically to the snapshotted one.
  void restore(const linalg::Vector& theta, const linalg::Matrix& covariance,
               std::size_t updates);

 private:
  std::size_t dim_;
  double forgetting_;
  double initial_covariance_;
  linalg::Vector theta_;
  linalg::Matrix p_;
  std::size_t updates_ = 0;
};

}  // namespace gridctl::solvers
