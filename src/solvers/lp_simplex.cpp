#include "solvers/lp_simplex.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace gridctl::solvers {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Dense simplex tableau in standard form:
//   minimize cᵀx  s.t.  A x = b,  x >= 0,  b >= 0.
// Rows 0..m-1 hold [A | b]; row m holds the reduced-cost row [c̄ | -z].
class Tableau {
 public:
  Tableau(const Matrix& a, const Vector& b, const Vector& c)
      : m_(a.rows()), n_(a.cols()), t_(a.rows() + 1, a.cols() + 1),
        basis_(a.rows()) {
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) t_(i, j) = a(i, j);
      t_(i, n_) = b[i];
    }
    for (std::size_t j = 0; j < n_; ++j) t_(m_, j) = c[j];
  }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }
  const std::vector<std::size_t>& basis() const { return basis_; }
  double objective() const { return -t_(m_, n_); }
  double rhs(std::size_t row) const { return t_(row, n_); }
  double reduced_cost(std::size_t col) const { return t_(m_, col); }

  void set_basis(std::size_t row, std::size_t col) { basis_[row] = col; }

  // Make reduced costs of basic columns zero (price out the basis).
  void price_out(double tol) {
    for (std::size_t i = 0; i < m_; ++i) {
      const double coef = t_(m_, basis_[i]);
      if (std::abs(coef) > tol) add_multiple_of_row(i, m_, -coef);
    }
  }

  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double pivot_val = t_(pivot_row, pivot_col);
    for (std::size_t j = 0; j <= n_; ++j) t_(pivot_row, j) /= pivot_val;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == pivot_row) continue;
      const double factor = t_(i, pivot_col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= n_; ++j) {
        t_(i, j) -= factor * t_(pivot_row, j);
      }
    }
    basis_[pivot_row] = pivot_col;
  }

  // Bland's rule iteration. Returns optimal/unbounded/iterating.
  enum class Step { kOptimal, kUnbounded, kPivoted };
  Step step(double tol) {
    // Entering: smallest index with negative reduced cost.
    std::size_t enter = n_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (t_(m_, j) < -tol) {
        enter = j;
        break;
      }
    }
    if (enter == n_) return Step::kOptimal;
    // Leaving: min ratio, ties by smallest basis index (Bland).
    std::size_t leave = m_;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m_; ++i) {
      const double aij = t_(i, enter);
      if (aij > tol) {
        const double ratio = t_(i, n_) / aij;
        if (ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol &&
             (leave == m_ || basis_[i] < basis_[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m_) return Step::kUnbounded;
    pivot(leave, enter);
    return Step::kPivoted;
  }

  double entry(std::size_t r, std::size_t c) const { return t_(r, c); }

 private:
  void add_multiple_of_row(std::size_t src, std::size_t dst, double factor) {
    for (std::size_t j = 0; j <= n_; ++j) t_(dst, j) += factor * t_(src, j);
  }

  std::size_t m_, n_;
  Matrix t_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpResult solve_lp(const LpProblem& problem, const LpOptions& options) {
  const std::size_t n_orig = problem.c.size();
  const std::size_t m_eq = problem.a_eq.rows();
  const std::size_t m_ub = problem.a_ub.rows();
  if (m_eq > 0) {
    require(problem.a_eq.cols() == n_orig && problem.b_eq.size() == m_eq,
            "solve_lp: equality block dimension mismatch");
  }
  if (m_ub > 0) {
    require(problem.a_ub.cols() == n_orig && problem.b_ub.size() == m_ub,
            "solve_lp: inequality block dimension mismatch");
  }
  const std::size_t m = m_eq + m_ub;
  const std::size_t n_slack = m_ub;
  // Layout: [original | slacks | artificials].
  const std::size_t n_art = m;
  const std::size_t n_total = n_orig + n_slack + n_art;

  Matrix a(m, n_total);
  Vector b(m);
  for (std::size_t i = 0; i < m_eq; ++i) {
    for (std::size_t j = 0; j < n_orig; ++j) a(i, j) = problem.a_eq(i, j);
    b[i] = problem.b_eq[i];
  }
  for (std::size_t i = 0; i < m_ub; ++i) {
    const std::size_t row = m_eq + i;
    for (std::size_t j = 0; j < n_orig; ++j) a(row, j) = problem.a_ub(i, j);
    a(row, n_orig + i) = 1.0;  // slack
    b[row] = problem.b_ub[i];
  }
  // Standard form needs b >= 0.
  for (std::size_t i = 0; i < m; ++i) {
    if (b[i] < 0.0) {
      for (std::size_t j = 0; j < n_orig + n_slack; ++j) a(i, j) = -a(i, j);
      b[i] = -b[i];
    }
  }
  // Artificial columns form the initial identity basis.
  for (std::size_t i = 0; i < m; ++i) a(i, n_orig + n_slack + i) = 1.0;

  // Phase 1: minimize the sum of artificials.
  Vector c1(n_total, 0.0);
  for (std::size_t i = 0; i < n_art; ++i) c1[n_orig + n_slack + i] = 1.0;

  Tableau tab(a, b, c1);
  for (std::size_t i = 0; i < m; ++i) tab.set_basis(i, n_orig + n_slack + i);
  tab.price_out(options.tolerance);

  LpResult result;
  while (true) {
    if (result.iterations++ > options.max_iterations) {
      throw NumericalError("solve_lp: phase-1 iteration limit exceeded");
    }
    const auto step = tab.step(options.tolerance);
    if (step == Tableau::Step::kOptimal) break;
    if (step == Tableau::Step::kUnbounded) {
      // Phase-1 objective is bounded below by 0; cannot be unbounded.
      throw NumericalError("solve_lp: phase-1 reported unbounded");
    }
  }
  if (tab.objective() > 1e-7 * std::max(1.0, linalg::norm_inf(b))) {
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Drive any artificial variables remaining in the basis out (or confirm
  // their rows are redundant).
  for (std::size_t i = 0; i < m; ++i) {
    if (tab.basis()[i] < n_orig + n_slack) continue;
    bool pivoted = false;
    for (std::size_t j = 0; j < n_orig + n_slack; ++j) {
      if (std::abs(tab.entry(i, j)) > options.tolerance) {
        tab.pivot(i, j);
        pivoted = true;
        break;
      }
    }
    // If no pivot exists the row is all-zero (redundant constraint); the
    // artificial stays basic at value zero, which is harmless.
    (void)pivoted;
  }

  // Phase 2: swap in the real objective, forbid artificials by giving
  // them a +inf-ish cost is unnecessary: they are non-basic at zero (or
  // basic at zero in redundant rows) and a huge cost keeps them out.
  {
    // Rebuild the cost row in place: subtract current cost row, add real.
    // Simplest correct approach: rebuild a fresh tableau from the current
    // basis is costly; instead we directly overwrite the cost row.
    // Tableau does not expose that, so emulate via price-out: construct
    // phase-2 costs, set reduced-cost row = c, then price out basis.
    // To keep Tableau simple we re-create it from the *current* basic
    // representation: rows of `tab` already encode B⁻¹A and B⁻¹b.
    Matrix a2(m, n_total);
    Vector b2(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n_total; ++j) a2(i, j) = tab.entry(i, j);
      b2[i] = tab.rhs(i);
    }
    Vector c2(n_total, 0.0);
    for (std::size_t j = 0; j < n_orig; ++j) c2[j] = problem.c[j];
    const double big =
        1e7 * (1.0 + linalg::norm_inf(problem.c));  // keep artificials out
    for (std::size_t j = n_orig + n_slack; j < n_total; ++j) c2[j] = big;

    Tableau tab2(a2, b2, c2);
    for (std::size_t i = 0; i < m; ++i) tab2.set_basis(i, tab.basis()[i]);
    tab2.price_out(options.tolerance);

    while (true) {
      if (result.iterations++ > options.max_iterations) {
        throw NumericalError("solve_lp: phase-2 iteration limit exceeded");
      }
      const auto step = tab2.step(options.tolerance);
      if (step == Tableau::Step::kOptimal) break;
      if (step == Tableau::Step::kUnbounded) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
    }

    result.x.assign(n_orig, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (tab2.basis()[i] < n_orig) result.x[tab2.basis()[i]] = tab2.rhs(i);
    }
    result.objective = linalg::dot(problem.c, result.x);
    result.status = LpStatus::kOptimal;
  }
  return result;
}

}  // namespace gridctl::solvers
