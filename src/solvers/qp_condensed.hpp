// Structure-exploiting condensed solver for the transport-structured
// MPC QP (paper eq. 42–45 over the portal→IDC allocation).
//
// The dense path stacks the problem over the move vector ΔU and hands
// an (β2·C·N)-variable QP with dense constraint matrices to the generic
// ADMM solver — O((β2·C·N)³) in the factorization and multi-GB matrices
// at fleet scale (C=200 portals, N=50 IDCs, β2=10 ⇒ 100k variables).
// This solver never materializes any of that. It exploits three
// structural facts of the CostController problem:
//
//  1. The plant is stateless and *separable per IDC*: output j depends
//     on the inputs only through the column sum σ[j] = Σ_i u[i,j]
//     (Y_j = slope_j σ[j] + y0_j).
//  2. In the cumulative variables V_t = Σ_{τ<=t} ΔU_τ = U_t − U_{k-1},
//     every constraint (conservation, per-IDC caps, non-negativity) is
//     per-step separable, and the move penalty becomes V^T (T ⊗ I) V
//     with T the β2×β2 tridiagonal "anchored chain" matrix
//     (diag 2…2,1, off-diag −1).
//  3. The ADMM x-update matrix therefore splits as B + W D̃ Wᵀ, where
//     B is block-tridiagonal over t with blocks in the two-dimensional
//     commutative algebra {a·I + b·(I_C ⊗ 1_N 1_Nᵀ)} (closed under
//     products and inverses since J² = N·J), and W = I_β2 ⊗ 1_C ⊗ I_N
//     is the per-(step, IDC) column-sum map of rank β2·N.
//
// The per-iteration solve is then a block-Thomas sweep with scalar
// 2-component coefficient recurrences (O(β2·C·N)) plus a Woodbury
// correction through a β2N × β2N capacitance matrix K, assembled via
// the Jacobi eigendecomposition of T and Cholesky-factorized ONCE in
// configure() — the factorization depends only on the shape, weights
// and penalty parameters, never on per-tick data, so it is reused
// across every control period until the plant or horizons change.
//
// The iteration itself mirrors qp_admm.cpp exactly — same splitting,
// over-relaxation, per-row rho (equality rows scaled by rho_eq_scale),
// residual and termination formulas, and primal-infeasibility
// heuristic — so the two backends agree on converged solutions and on
// failure semantics; only the parametrization (V vs ΔU) and the linear
// algebra differ. After configure(), solve() performs no heap
// allocation: every buffer lives in a preallocated arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "solvers/qp.hpp"
#include "solvers/qp_admm.hpp"
#include "util/thread_annotations.hpp"

namespace gridctl::solvers {

// Problem shape: C portals × N IDCs, horizons β1 (prediction) ≥ β2
// (control). `nonnegative` adds the U >= 0 rows (one per variable).
struct TransportQpShape {
  std::size_t portals = 0;     // C
  std::size_t idcs = 0;        // N
  std::size_t prediction = 0;  // β1
  std::size_t control = 0;     // β2
  bool nonnegative = true;

  std::size_t num_inputs() const { return portals * idcs; }
  std::size_t num_vars() const { return control * num_inputs(); }
  // Condensed dual layout: β2·C equality rows (t-major, portal within),
  // then β2·N cap rows (t-major, IDC within), then β2·C·N non-negativity
  // rows in variable order.
  std::size_t num_rows() const {
    return control * (portals + idcs + (nonnegative ? num_inputs() : 0));
  }
  void validate() const;
};

// Tick-independent cost data: per-IDC tracking weight q_j >= 0, output
// map Y_j = slope_j·σ[j] + y0_j, and the uniform move penalty r >= 0.
struct TransportQpCost {
  linalg::Vector q;      // N
  linalg::Vector slope;  // N
  linalg::Vector y0;     // N
  double r = 0.0;
};

// The tick-independent factorization configure() produces: the
// block-Thomas Schur scalars, the Woodbury capacitance inverse and the
// per-(step, IDC) Hessian diagonal. Immutable once built, so many
// solvers (one per fleet in the control plane) can read one instance
// concurrently through shared_ptr<const>.
struct CondensedFactors {
  linalg::Vector thomas_ip;  // β2 Schur-inverse identity coefficients
  linalg::Vector thomas_iq;  // β2 Schur-inverse J coefficients
  linalg::Matrix kinv;       // Woodbury capacitance inverse (β2·N × β2·N)
  linalg::Vector chat;       // β2·N Hessian diagonal cnt_t·q_j·slope_j²
};

// Process-wide cache of condensed factorizations, keyed by everything
// that enters them: the problem shape, the cost data, and the ADMM
// penalty parameters (rho, rho_eq_scale, sigma). Fleets sharing a plant
// shape then pay the O(β2³ + (β2·N)³) configure cost once and share the
// capacitance matrix memory. Thread-safe; misses compute under the lock
// (a deliberate trade: concurrent first-touch of the *same* key would
// otherwise duplicate the most expensive step).
class CondensedFactorCache {
 public:
  // The cached factors for this key, computed on first request.
  std::shared_ptr<const CondensedFactors> get(const TransportQpShape& shape,
                                              const TransportQpCost& cost,
                                              const AdmmOptions& options);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    TransportQpShape shape;
    TransportQpCost cost;
    double rho = 0.0;
    double rho_eq_scale = 0.0;
    double sigma = 0.0;
    std::shared_ptr<const CondensedFactors> factors;
  };

  // Linear key match over the cached entries; null when absent. Callers
  // hold mutex_ (get() takes it once and keeps it across the miss
  // compute — see the class comment for why misses stay under the lock).
  const Entry* find_locked(const TransportQpShape& shape,
                           const TransportQpCost& cost,
                           const AdmmOptions& options) const
      GRIDCTL_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::vector<Entry> entries_ GRIDCTL_GUARDED_BY(mutex_);
  std::uint64_t hits_ GRIDCTL_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GRIDCTL_GUARDED_BY(mutex_) = 0;
};

struct CondensedQpResult {
  QpStatus status = QpStatus::kMaxIterations;
  linalg::Vector delta_u;  // stacked moves ΔU_0..ΔU_{β2-1} (β2·C·N)
  linalg::Vector y;        // dual, condensed row layout (see TransportQpShape)
  linalg::Vector y1;       // first predicted output Y_1 (N)
  double objective = 0.0;  // true least-squares objective (matches lsq.cpp)
  std::size_t iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
};

class CondensedQpSolver {
 public:
  CondensedQpSolver() = default;

  // Build the factorization and size the arena. O(β2³ + (β2·N)³) once;
  // `options.rho/rho_eq_scale/sigma` enter the cached factors, so a new
  // configure() is needed if they change. Throws InvalidArgument on
  // inconsistent shape/cost sizes. With a non-null `cache` the factors
  // come from (and are inserted into) the shared cache instead of being
  // computed locally — a cache hit makes configure O(arena).
  void configure(const TransportQpShape& shape, const TransportQpCost& cost,
                 const AdmmOptions& options = {},
                 CondensedFactorCache* cache = nullptr);
  bool configured() const { return configured_; }

  const TransportQpShape& shape() const { return shape_; }

  // Solve one control period. All vectors are in the caller's units:
  //   u_prev      (C·N)  previous applied allocation, portal-major
  //   demand      (C)    conservation right-hand side per portal
  //   cap_lower/upper (N) per-IDC load bounds on σ[j] (may be ±inf)
  //   references  r_s[j]; fewer than β1 entries hold the last one
  //   warm_delta_u (β2·C·N or empty) previous stacked-move solution
  //   warm_dual    (num_rows() or empty) previous condensed dual
  //   max_iterations (0 = options default) fault-injection iteration cap
  // Returns a reference to an internally owned result (valid until the
  // next solve). Allocation-free after the first call.
  const CondensedQpResult& solve(const linalg::Vector& u_prev,
                                 const linalg::Vector& demand,
                                 const linalg::Vector& cap_lower,
                                 const linalg::Vector& cap_upper,
                                 const std::vector<linalg::Vector>& references,
                                 const linalg::Vector& warm_delta_u,
                                 const linalg::Vector& warm_dual,
                                 std::size_t max_iterations = 0);

 private:
  // Apply B⁻¹ in place via the block-Thomas sweeps. `groups` is the
  // portal multiplicity: C for full variable blocks, 1 for the
  // portal-uniform β2·N reduced system (the algebra is identical).
  void solve_b_in_place(double* x, std::size_t groups) const;

  TransportQpShape shape_;
  TransportQpCost cost_;
  AdmmOptions options_;
  bool configured_ = false;

  // Derived scalars.
  double rho_in_ = 0.0;      // inequality-row step size
  double inv_rho_in_ = 0.0;  // hoisted reciprocal for the hot dual updates
  double rho_eq_ = 0.0;      // equality-row step size
  double diag_shift_ = 0.0;  // sigma (+ rho_in when nonnegative)

  // The tick-independent factorization (Thomas Schur scalars, Woodbury
  // capacitance inverse K⁻¹, Hessian diagonal ĉ). Owned via shared_ptr
  // so fleets configured through a CondensedFactorCache share one
  // immutable instance instead of each holding a (β2·N)² matrix.
  std::shared_ptr<const CondensedFactors> factors_;

  // Arena (sized in configure, reused every solve). zt_ and ax_ only
  // carry the equality + cap sections: the non-negativity rows of A x̃
  // are x̃ itself (A_nn = I) and are consumed in-register by the fused
  // update sweep, never stored.
  linalg::Vector x_, u_;                            // n-sized
  linalg::Vector z_, y_;                            // rows-sized
  linalg::Vector zt_, ax_;                          // β2·(C+N)
  linalg::Vector cvec_, wvec_, capadd_;             // β2·N
  linalg::Vector pl_, caplo_, capup_;               // N
  linalg::Vector beq_;                              // C
  linalg::Vector ghat_;                             // β1·N tracking targets
  linalg::Vector qlin_;                             // β2·N compact linear term
  CondensedQpResult result_;
};

}  // namespace gridctl::solvers
