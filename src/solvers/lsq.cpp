#include "solvers/lsq.hpp"

#include "solvers/qp_active_set.hpp"
#include "solvers/qp_admm.hpp"
#include "util/error.hpp"

namespace gridctl::solvers {

using linalg::Matrix;
using linalg::Vector;

QpProblem to_qp(const ConstrainedLsqProblem& problem) {
  const std::size_t n = problem.f.cols();
  const std::size_t rows = problem.f.rows();
  require(problem.g.size() == rows, "lsq: g size mismatch");
  require(problem.w.size() == rows, "lsq: w size mismatch");
  require(problem.r.size() == n, "lsq: r size mismatch");

  // P = 2 (Fᵀ W F + R), q = -2 Fᵀ W g. The factor 2 keeps
  // ½xᵀPx + qᵀx equal to the least-squares objective up to the constant
  // gᵀWg, so QP objectives are comparable across backends.
  Matrix wf = problem.f;  // W F computed by scaling rows
  Vector wg(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    require(problem.w[i] >= 0.0, "lsq: weights must be non-negative");
    for (std::size_t j = 0; j < n; ++j) wf(i, j) *= problem.w[i];
    wg[i] = problem.w[i] * problem.g[i];
  }
  const Matrix ft = problem.f.transpose();
  QpProblem qp;
  qp.p = ft * wf;
  for (std::size_t j = 0; j < n; ++j) {
    require(problem.r[j] >= 0.0, "lsq: regularizers must be non-negative");
    qp.p(j, j) += problem.r[j];
  }
  qp.p *= 2.0;
  qp.q = linalg::scale(-2.0, ft * wg);

  // Stack equality rows (lower == upper) above inequality rows.
  const std::size_t m_eq = problem.a_eq.rows();
  const std::size_t m_in = problem.a_in.rows();
  if (m_eq + m_in > 0) {
    qp.a = Matrix(m_eq + m_in, n);
    qp.lower.assign(m_eq + m_in, 0.0);
    qp.upper.assign(m_eq + m_in, 0.0);
    if (m_eq > 0) {
      require(problem.a_eq.cols() == n && problem.b_eq.size() == m_eq,
              "lsq: equality block mismatch");
      qp.a.set_block(0, 0, problem.a_eq);
      for (std::size_t i = 0; i < m_eq; ++i) {
        qp.lower[i] = problem.b_eq[i];
        qp.upper[i] = problem.b_eq[i];
      }
    }
    if (m_in > 0) {
      require(problem.a_in.cols() == n && problem.lower.size() == m_in &&
                  problem.upper.size() == m_in,
              "lsq: inequality block mismatch");
      qp.a.set_block(m_eq, 0, problem.a_in);
      for (std::size_t i = 0; i < m_in; ++i) {
        qp.lower[m_eq + i] = problem.lower[i];
        qp.upper[m_eq + i] = problem.upper[i];
      }
    }
  }
  return qp;
}

ConstrainedLsqResult solve_constrained_lsq(const ConstrainedLsqProblem& problem,
                                           const LsqSolveOptions& options,
                                           const Vector& warm_x) {
  const QpProblem qp = to_qp(problem);
  QpResult qp_result;
  switch (options.backend) {
    // kCondensed needs the structured problem description the MPC layer
    // holds; through this dense interface it degrades to the equivalent
    // ADMM solve.
    case LsqBackend::kCondensed:
    case LsqBackend::kAdmm: {
      // MPC problems arrive pre-normalized to O(1) magnitudes, so a
      // 1e-6 tolerance is far below any physically meaningful digit and
      // saves a large constant factor per control period.
      AdmmOptions admm;
      admm.eps_abs = 1e-6;
      admm.eps_rel = 1e-6;
      if (options.max_iterations > 0) {
        admm.max_iterations = options.max_iterations;
      }
      qp_result = solve_qp_admm(qp, admm, warm_x);
      break;
    }
    case LsqBackend::kActiveSet: {
      ActiveSetOptions active_set;
      if (options.max_iterations > 0) {
        active_set.max_iterations = options.max_iterations;
      }
      qp_result = solve_qp_active_set(qp, active_set);
      break;
    }
  }
  ConstrainedLsqResult result;
  result.status = qp_result.status;
  result.x = std::move(qp_result.x);
  result.iterations = qp_result.iterations;
  // Report the true least-squares objective.
  const Vector residual = linalg::sub(problem.f * result.x, problem.g);
  double obj = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    obj += problem.w[i] * residual[i] * residual[i];
  }
  for (std::size_t j = 0; j < result.x.size(); ++j) {
    obj += problem.r[j] * result.x[j] * result.x[j];
  }
  result.objective = obj;
  return result;
}

}  // namespace gridctl::solvers
