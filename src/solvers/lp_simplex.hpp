// Two-phase primal simplex for dense linear programs.
//
//   minimize    cᵀ x
//   subject to  A_eq x  = b_eq
//               A_ub x <= b_ub
//               x >= 0
//
// Bland's rule guarantees termination on degenerate problems. This is the
// workhorse behind the reference optimizer (the Rao et al. "optimal
// method" baseline, paper eq. 46) and the active-set QP's feasibility
// phase. gridctl's LPs have tens of variables, so a dense tableau is the
// right tool.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace gridctl::solvers {

struct LpProblem {
  linalg::Vector c;      // objective coefficients (minimization)
  linalg::Matrix a_eq;   // may be empty
  linalg::Vector b_eq;
  linalg::Matrix a_ub;   // may be empty
  linalg::Vector b_ub;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  linalg::Vector x;          // primal solution (original variables)
  double objective = 0.0;
  std::size_t iterations = 0;
};

struct LpOptions {
  std::size_t max_iterations = 10000;
  double tolerance = 1e-9;
};

LpResult solve_lp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace gridctl::solvers
