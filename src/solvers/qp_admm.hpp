// OSQP-style ADMM solver for convex QPs (Stellato et al., 2020).
//
// Splitting:  min ½xᵀPx + qᵀx + I_{l<=z<=u}(z)  s.t.  Ax = z.
// Each iteration solves one quasi-definite KKT system (factorized once)
// and projects onto the box. Robust on the MPC problems gridctl builds:
// it needs no feasible starting point and detects primal infeasibility
// via the standard certificate test.
#pragma once

#include "solvers/qp.hpp"

namespace gridctl::solvers {

struct AdmmOptions {
  double rho = 0.1;            // base step size for inequality rows
  double rho_eq_scale = 1e3;   // equality rows use rho * this
  double sigma = 1e-6;         // primal regularization
  double alpha = 1.6;          // over-relaxation
  double eps_abs = 1e-8;
  double eps_rel = 1e-8;
  std::size_t max_iterations = 20000;
  std::size_t check_interval = 10;  // residual check cadence
};

// Solve; `warm_x` / `warm_y` seed the iteration when non-empty.
QpResult solve_qp_admm(const QpProblem& problem,
                       const AdmmOptions& options = {},
                       const linalg::Vector& warm_x = {},
                       const linalg::Vector& warm_y = {});

}  // namespace gridctl::solvers
