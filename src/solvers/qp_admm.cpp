#include "solvers/qp_admm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/error.hpp"

namespace gridctl::solvers {

using linalg::Matrix;
using linalg::Vector;

void QpProblem::validate() const {
  const std::size_t n = num_vars();
  const std::size_t m = num_constraints();
  require(p.rows() == n && p.cols() == n, "QpProblem: P must be n x n");
  if (m > 0) {
    require(a.rows() == m && a.cols() == n, "QpProblem: A must be m x n");
  }
  require(upper.size() == m, "QpProblem: bound size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    require(lower[i] <= upper[i], "QpProblem: lower > upper");
  }
}

double QpProblem::objective(const Vector& x) const {
  return 0.5 * linalg::quadratic_form(p, x) + linalg::dot(q, x);
}

double QpProblem::max_violation(const Vector& x) const {
  if (num_constraints() == 0) return 0.0;
  const Vector ax = a * x;
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    if (std::isfinite(lower[i])) worst = std::max(worst, lower[i] - ax[i]);
    if (std::isfinite(upper[i])) worst = std::max(worst, ax[i] - upper[i]);
  }
  return worst;
}

namespace {

struct Residuals {
  double primal = 0.0;
  double dual = 0.0;
  double eps_primal = 0.0;
  double eps_dual = 0.0;
};

Residuals compute_residuals(const QpProblem& prob, const Vector& x,
                            const Vector& z, const Vector& y,
                            const AdmmOptions& opt) {
  Residuals res;
  const Vector ax = prob.num_constraints() ? prob.a * x : Vector{};
  const Vector px = prob.p * x;
  Vector aty(x.size(), 0.0);
  if (prob.num_constraints()) {
    const Matrix at = prob.a.transpose();
    aty = at * y;
  }
  res.primal = prob.num_constraints() ? linalg::norm_inf(linalg::sub(ax, z)) : 0.0;
  Vector dual_vec = px;
  for (std::size_t i = 0; i < dual_vec.size(); ++i) {
    dual_vec[i] += prob.q[i] + aty[i];
  }
  res.dual = linalg::norm_inf(dual_vec);
  const double scale_primal =
      std::max(prob.num_constraints() ? linalg::norm_inf(ax) : 0.0,
               linalg::norm_inf(z));
  const double scale_dual = std::max(
      {linalg::norm_inf(px), linalg::norm_inf(aty), linalg::norm_inf(prob.q)});
  res.eps_primal = opt.eps_abs + opt.eps_rel * scale_primal;
  res.eps_dual = opt.eps_abs + opt.eps_rel * scale_dual;
  return res;
}

}  // namespace

QpResult solve_qp_admm(const QpProblem& problem, const AdmmOptions& options,
                       const Vector& warm_x, const Vector& warm_y) {
  problem.validate();
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.num_constraints();

  // Per-row step sizes: equality rows get a much larger rho (OSQP's
  // standard heuristic) so they are enforced tightly.
  Vector rho(m), rho_inv(m);
  for (std::size_t i = 0; i < m; ++i) {
    const bool is_eq = problem.lower[i] == problem.upper[i];
    rho[i] = is_eq ? options.rho * options.rho_eq_scale : options.rho;
    rho_inv[i] = 1.0 / rho[i];
  }

  // KKT matrix [[P + sigma I, Aᵀ], [A, -diag(1/rho)]], factorized once.
  Matrix kkt(n + m, n + m);
  kkt.set_block(0, 0, problem.p);
  for (std::size_t i = 0; i < n; ++i) kkt(i, i) += options.sigma;
  if (m > 0) {
    kkt.set_block(0, n, problem.a.transpose());
    kkt.set_block(n, 0, problem.a);
    for (std::size_t i = 0; i < m; ++i) kkt(n + i, n + i) = -rho_inv[i];
  }
  const linalg::Ldlt kkt_factor(kkt);

  QpResult result;
  Vector x = warm_x.size() == n ? warm_x : Vector(n, 0.0);
  Vector y = warm_y.size() == m ? warm_y : Vector(m, 0.0);
  Vector z = m ? problem.a * x : Vector{};
  for (std::size_t i = 0; i < m; ++i) {
    z[i] = std::clamp(z[i], problem.lower[i], problem.upper[i]);
  }

  Vector rhs(n + m), sol;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // rhs = [sigma x - q; z - y/rho]
    for (std::size_t i = 0; i < n; ++i) rhs[i] = options.sigma * x[i] - problem.q[i];
    for (std::size_t i = 0; i < m; ++i) rhs[n + i] = z[i] - rho_inv[i] * y[i];
    sol = kkt_factor.solve(rhs);

    Vector x_tilde(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
    // nu (the KKT dual block) gives z_tilde = z + (nu - y)/rho.
    Vector z_tilde(m);
    for (std::size_t i = 0; i < m; ++i) {
      z_tilde[i] = z[i] + rho_inv[i] * (sol[n + i] - y[i]);
    }

    // Over-relaxed updates.
    Vector x_next(n), z_next(m), y_next(m);
    for (std::size_t i = 0; i < n; ++i) {
      x_next[i] = options.alpha * x_tilde[i] + (1.0 - options.alpha) * x[i];
    }
    for (std::size_t i = 0; i < m; ++i) {
      const double z_relaxed =
          options.alpha * z_tilde[i] + (1.0 - options.alpha) * z[i];
      z_next[i] = std::clamp(z_relaxed + rho_inv[i] * y[i], problem.lower[i],
                             problem.upper[i]);
      y_next[i] = y[i] + rho[i] * (z_relaxed - z_next[i]);
    }
    x = std::move(x_next);
    z = std::move(z_next);
    y = std::move(y_next);

    if (iter % options.check_interval == 0 || iter == options.max_iterations) {
      const Residuals res = compute_residuals(problem, x, z, y, options);
      result.iterations = iter;
      result.primal_residual = res.primal;
      result.dual_residual = res.dual;
      if (res.primal <= res.eps_primal && res.dual <= res.eps_dual) {
        result.status = QpStatus::kOptimal;
        break;
      }
    }
  }

  // Primal infeasibility heuristic: residuals stalled far from feasible.
  if (result.status != QpStatus::kOptimal) {
    double bound_scale = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (std::isfinite(problem.upper[i])) {
        bound_scale = std::max(bound_scale, std::abs(problem.upper[i]));
      }
      if (std::isfinite(problem.lower[i])) {
        bound_scale = std::max(bound_scale, std::abs(problem.lower[i]));
      }
    }
    if (problem.max_violation(x) > 1e-3 * bound_scale) {
      result.status = QpStatus::kInfeasible;
    }
  }

  result.x = std::move(x);
  result.y = std::move(y);
  result.objective = problem.objective(result.x);
  return result;
}

}  // namespace gridctl::solvers
