// Weighted, linearly constrained least squares — the exact shape of the
// paper's transformed MPC problem (eq. 42–45):
//
//   minimize    || F x - g ||²_W  +  || x ||²_R
//   subject to  A_eq x  = b_eq
//               lower <= A_in x <= upper
//
// Mapped onto the QP solvers via P = 2(FᵀWF + R), q = -2 FᵀW g.
#pragma once

#include "solvers/qp.hpp"

namespace gridctl::solvers {

struct ConstrainedLsqProblem {
  linalg::Matrix f;        // residual map (rows x n)
  linalg::Vector g;        // residual target
  linalg::Vector w;        // per-residual weights (diagonal W), size rows
  linalg::Vector r;        // per-variable regularization (diagonal R), size n
  linalg::Matrix a_eq;     // may be empty
  linalg::Vector b_eq;
  linalg::Matrix a_in;     // may be empty
  linalg::Vector lower;    // entries may be -inf
  linalg::Vector upper;    // entries may be +inf
};

// kCondensed selects the structure-exploiting transport solver
// (qp_condensed.hpp) where the problem shape allows it — the MPC layer
// detects the transport structure and routes accordingly. This dense
// entry point cannot express that structure, so solve_constrained_lsq
// treats kCondensed as kAdmm (the same splitting method the condensed
// solver mirrors).
enum class LsqBackend { kAdmm, kActiveSet, kCondensed };

// Solve knobs shared by both backends. `max_iterations == 0` keeps each
// backend's own default; a small forced cap is the fault-injection lever
// the degradation-chain tests use.
struct LsqSolveOptions {
  LsqBackend backend = LsqBackend::kAdmm;
  std::size_t max_iterations = 0;
};

struct ConstrainedLsqResult {
  QpStatus status = QpStatus::kMaxIterations;
  linalg::Vector x;
  double objective = 0.0;       // in the least-squares metric above
  std::size_t iterations = 0;
};

// Builds the equivalent QP (merging equality and inequality blocks into
// one box-constraint matrix) and solves it.
ConstrainedLsqResult solve_constrained_lsq(
    const ConstrainedLsqProblem& problem, const LsqSolveOptions& options,
    const linalg::Vector& warm_x = {});

inline ConstrainedLsqResult solve_constrained_lsq(
    const ConstrainedLsqProblem& problem,
    LsqBackend backend = LsqBackend::kAdmm,
    const linalg::Vector& warm_x = {}) {
  return solve_constrained_lsq(problem, LsqSolveOptions{backend, 0}, warm_x);
}

// The QP translation, exposed for tests.
QpProblem to_qp(const ConstrainedLsqProblem& problem);

}  // namespace gridctl::solvers
