// Per-run telemetry recorded by the closed-loop simulation and
// aggregated by the sweep engine.
//
// A `RunTelemetry` is a passive sink: `core::run_simulation` fills it
// when `SimulationOptions::telemetry` points at one. Everything here is
// plain counters and wall-clock accumulators — no allocation on the
// recording path beyond the fixed histogram, so instrumentation cost is
// a few `steady_clock::now()` calls per step. The struct is header-only
// so the core simulation can record into it without linking the engine
// library; JSON serialization lives in telemetry.cpp (gridctl_engine).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "check/types.hpp"
#include "solvers/qp.hpp"
#include "util/json.hpp"

namespace gridctl::engine {

// Power-of-two-bucketed histogram of per-step wall times. Bucket i
// counts steps with wall time in [2^i, 2^(i+1)) microseconds (bucket 0
// additionally catches everything below 2 us, the last bucket everything
// at or above 2^(kBuckets-1) us ≈ 32.8 ms). Fixed storage: recording
// never allocates, so the simulation hot loop stays RSS-flat.
struct StepTimingHistogram {
  static constexpr std::size_t kBuckets = 16;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t samples = 0;
  double total_us = 0.0;
  double max_us = 0.0;

  void record(double us) {
    ++samples;
    total_us += us;
    if (us > max_us) max_us = us;
    std::size_t bucket = 0;
    double upper = 2.0;  // exclusive upper edge of bucket 0
    while (bucket + 1 < kBuckets && us >= upper) {
      upper *= 2.0;
      ++bucket;
    }
    ++counts[bucket];
  }

  // Exclusive upper edge of bucket i in microseconds (the last bucket is
  // open-ended and reports infinity).
  static double bucket_upper_us(std::size_t i) {
    if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return static_cast<double>(std::uint64_t{2} << i);
  }

  double mean_us() const {
    return samples == 0 ? 0.0 : total_us / static_cast<double>(samples);
  }
};

// Everything one closed-loop run reports about itself: wall-clock per
// phase, the inner QP solver's behavior (threaded up from `MpcResult`
// through `PolicyDecision::solver`), and the step-timing distribution.
struct RunTelemetry {
  // Wall-clock seconds per phase. `policy_s` is time inside
  // `AllocationPolicy::decide` (reference LPs + MPC QP for the control
  // policy); `plant_s` covers fleet/queue advancement; `record_s` the
  // trace bookkeeping; `total_s` the whole run including setup.
  double warm_start_s = 0.0;
  double policy_s = 0.0;
  double plant_s = 0.0;
  double record_s = 0.0;
  double total_s = 0.0;

  std::size_t steps = 0;

  // Inner-solver counters, summed over the run. Zero for policies
  // without an optimizer (e.g. the static baseline).
  std::uint64_t solver_calls = 0;
  std::uint64_t solver_iterations = 0;
  std::uint64_t status_optimal = 0;
  std::uint64_t status_max_iterations = 0;
  std::uint64_t status_infeasible = 0;
  std::uint64_t warm_start_hits = 0;

  // Degradation-chain counters (gridctl::check): periods rescued by the
  // alternate QP backend (tier 1) and periods that re-applied the last
  // feasible allocation (tier 2).
  std::uint64_t fallback_backend_retries = 0;
  std::uint64_t fallback_holds = 0;

  // Invariant-checking totals over the run (zero `checks` when the
  // policy does not run the checker).
  check::InvariantCounts invariants;

  StepTimingHistogram step_hist;

  void record_solver(solvers::QpStatus status, std::size_t iterations,
                     bool warm_started,
                     check::FallbackTier tier = check::FallbackTier::kNone) {
    ++solver_calls;
    solver_iterations += iterations;
    switch (status) {
      case solvers::QpStatus::kOptimal: ++status_optimal; break;
      case solvers::QpStatus::kMaxIterations: ++status_max_iterations; break;
      case solvers::QpStatus::kInfeasible: ++status_infeasible; break;
    }
    if (warm_started) ++warm_start_hits;
    switch (tier) {
      case check::FallbackTier::kNone: break;
      case check::FallbackTier::kBackendRetry: ++fallback_backend_retries; break;
      case check::FallbackTier::kHoldLastFeasible: ++fallback_holds; break;
    }
  }

  void record_invariants(const check::InvariantCounts& counts) {
    invariants.merge(counts);
  }

  // Fraction of solver calls that reused the previous move solution.
  double warm_start_hit_rate() const {
    return solver_calls == 0
               ? 0.0
               : static_cast<double>(warm_start_hits) /
                     static_cast<double>(solver_calls);
  }

  double mean_solver_iterations() const {
    return solver_calls == 0
               ? 0.0
               : static_cast<double>(solver_iterations) /
                     static_cast<double>(solver_calls);
  }
};

// JSON view of one run's telemetry (the schema is documented in
// docs/ARCHITECTURE.md).
JsonValue telemetry_to_json(const RunTelemetry& telemetry);

}  // namespace gridctl::engine
