#include "engine/telemetry.hpp"

#include <cmath>

namespace gridctl::engine {

JsonValue telemetry_to_json(const RunTelemetry& telemetry) {
  JsonValue::Object object;

  JsonValue::Object phases;
  phases["warm_start_s"] = JsonValue(telemetry.warm_start_s);
  phases["policy_s"] = JsonValue(telemetry.policy_s);
  phases["plant_s"] = JsonValue(telemetry.plant_s);
  phases["record_s"] = JsonValue(telemetry.record_s);
  phases["total_s"] = JsonValue(telemetry.total_s);
  object["phases"] = JsonValue(std::move(phases));

  object["steps"] = JsonValue(static_cast<double>(telemetry.steps));

  JsonValue::Object solver;
  solver["calls"] = JsonValue(static_cast<double>(telemetry.solver_calls));
  solver["iterations"] =
      JsonValue(static_cast<double>(telemetry.solver_iterations));
  solver["mean_iterations"] = JsonValue(telemetry.mean_solver_iterations());
  solver["status_optimal"] =
      JsonValue(static_cast<double>(telemetry.status_optimal));
  solver["status_max_iterations"] =
      JsonValue(static_cast<double>(telemetry.status_max_iterations));
  solver["status_infeasible"] =
      JsonValue(static_cast<double>(telemetry.status_infeasible));
  solver["warm_start_hits"] =
      JsonValue(static_cast<double>(telemetry.warm_start_hits));
  solver["warm_start_hit_rate"] = JsonValue(telemetry.warm_start_hit_rate());
  object["solver"] = JsonValue(std::move(solver));

  JsonValue::Object fallback;
  fallback["backend_retries"] =
      JsonValue(static_cast<double>(telemetry.fallback_backend_retries));
  fallback["holds"] = JsonValue(static_cast<double>(telemetry.fallback_holds));
  object["fallback"] = JsonValue(std::move(fallback));

  JsonValue::Object invariants;
  invariants["checks"] =
      JsonValue(static_cast<double>(telemetry.invariants.checks));
  invariants["violations"] =
      JsonValue(static_cast<double>(telemetry.invariants.total()));
  JsonValue::Object by_kind;
  for (std::size_t i = 0; i < check::kNumInvariants; ++i) {
    by_kind[check::invariant_name(static_cast<check::Invariant>(i))] =
        JsonValue(static_cast<double>(telemetry.invariants.by_kind[i]));
  }
  invariants["by_kind"] = JsonValue(std::move(by_kind));
  object["invariants"] = JsonValue(std::move(invariants));

  JsonValue::Object hist;
  hist["samples"] = JsonValue(static_cast<double>(telemetry.step_hist.samples));
  hist["mean_us"] = JsonValue(telemetry.step_hist.mean_us());
  hist["max_us"] = JsonValue(telemetry.step_hist.max_us);
  JsonValue::Array counts;
  JsonValue::Array edges;
  for (std::size_t i = 0; i < StepTimingHistogram::kBuckets; ++i) {
    counts.push_back(
        JsonValue(static_cast<double>(telemetry.step_hist.counts[i])));
    // The last bucket is open-ended; its edge is omitted (JSON has no
    // infinity), so `bucket_edges_us` has kBuckets - 1 entries.
    if (i + 1 < StepTimingHistogram::kBuckets) {
      edges.push_back(JsonValue(StepTimingHistogram::bucket_upper_us(i)));
    }
  }
  hist["bucket_counts"] = JsonValue(std::move(counts));
  hist["bucket_edges_us"] = JsonValue(std::move(edges));
  object["step_timing"] = JsonValue(std::move(hist));

  return JsonValue(std::move(object));
}

}  // namespace gridctl::engine
