// Thread-pool-backed sweep engine: execute a declared grid of
// (scenario × policy × seed) closed-loop runs concurrently.
//
// Every experiment in `bench/` is such a grid; running it through
// `SweepRunner` parallelizes it across cores with results that are
// bit-identical to serial execution. Each job owns its policy and fleet
// state (created inside the worker from the job's factory); the shared
// pieces of a `Scenario` — price model, workload source — are immutable
// after construction, so jobs never synchronize. Per-job `RunTelemetry`
// makes solver behavior and phase costs observable, and the whole
// `SweepReport` serializes to JSON for the bench trajectory.
//
//   engine::SweepRunner runner;                     // hardware threads
//   std::vector<engine::SweepJob> jobs = ...;
//   const engine::SweepReport report = runner.run(jobs);
//   write_json_file("sweep.json", report.to_json());
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "engine/telemetry.hpp"

namespace gridctl::engine {

// Builds a fresh policy for one job. Called inside the worker thread so
// each run owns its controller/warm-start state outright.
using PolicyFactory =
    std::function<std::unique_ptr<core::AllocationPolicy>(
        const core::Scenario&)>;

// Stock factories for the three policies of the paper's evaluation,
// configured from the job's own scenario.
PolicyFactory control_policy();
PolicyFactory optimal_policy();
PolicyFactory static_policy();

// One cell of the sweep grid.
struct SweepJob {
  std::string name;               // label in the report, e.g. "seed=101/control"
  core::Scenario scenario;
  PolicyFactory policy;
  std::uint64_t seed = 0;         // echoed into the report; the scenario
                                  // builder has usually baked it in already
  core::SimulationOptions options;  // `telemetry` is overwritten per job
};

struct JobResult {
  std::string name;
  std::string policy;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;              // what() of a thrown job; empty when ok
  core::SimulationSummary summary;
  RunTelemetry telemetry;
  // Present only when the job asked for `record_trace` (sweeps usually
  // keep aggregates only).
  std::shared_ptr<const core::SimulationTrace> trace;
};

struct SweepReport {
  std::size_t threads = 0;
  double wall_s = 0.0;            // whole-sweep wall clock
  std::vector<JobResult> jobs;    // submission order, independent of
                                  // scheduling

  // Sum of per-job run times — with `threads > 1` this exceeds `wall_s`
  // by roughly the achieved speedup factor.
  double total_job_wall_s() const;
  std::size_t failed_jobs() const;

  // Sweep-wide invariant/degradation aggregates, summed over all jobs.
  std::uint64_t invariant_violations() const;
  std::uint64_t fallback_events() const;  // tier-1 retries + tier-2 holds

  // Full report as a JSON tree (schema in docs/ARCHITECTURE.md).
  JsonValue to_json() const;
};

JsonValue summary_to_json(const core::SimulationSummary& summary);

class SweepRunner {
 public:
  // `threads == 0` uses the hardware concurrency.
  explicit SweepRunner(std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  // Executes all jobs and blocks until done. A job that throws is
  // reported through `JobResult::error`; it never takes down the sweep.
  SweepReport run(const std::vector<SweepJob>& jobs) const;

 private:
  std::size_t threads_;
};

}  // namespace gridctl::engine
