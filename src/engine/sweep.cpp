#include "engine/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/units.hpp"

namespace gridctl::engine {

PolicyFactory control_policy() {
  return [](const core::Scenario& scenario) {
    return std::make_unique<core::MpcPolicy>(
        core::controller_config_from(scenario));
  };
}

PolicyFactory optimal_policy() {
  return [](const core::Scenario& scenario) {
    return std::make_unique<core::OptimalPolicy>(
        scenario.idcs, scenario.num_portals(),
        scenario.controller.cost_basis);
  };
}

PolicyFactory static_policy() {
  return [](const core::Scenario& scenario) {
    return std::make_unique<core::StaticProportionalPolicy>(
        scenario.idcs, scenario.num_portals());
  };
}

namespace {

JobResult execute_job(const SweepJob& job) {
  JobResult result;
  result.name = job.name;
  result.seed = job.seed;
  try {
    require(static_cast<bool>(job.policy), "SweepJob: missing policy factory");
    const std::unique_ptr<core::AllocationPolicy> policy =
        job.policy(job.scenario);
    require(policy != nullptr, "SweepJob: policy factory returned null");
    result.policy = policy->name();

    core::SimulationOptions options = job.options;
    options.telemetry = &result.telemetry;
    core::SimulationResult sim =
        core::run_simulation(job.scenario, *policy, options);
    result.summary = std::move(sim.summary);
    if (options.record_trace) {
      result.trace = std::make_shared<const core::SimulationTrace>(
          std::move(sim.trace));
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

SweepRunner::SweepRunner(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

SweepReport SweepRunner::run(const std::vector<SweepJob>& jobs) const {
  // Telemetry wall timing only; job results never read it.
  const auto begin = std::chrono::steady_clock::now();  // lint: nondet-ok

  SweepReport report;
  report.threads = std::min(threads_, std::max<std::size_t>(jobs.size(), 1));
  report.jobs.resize(jobs.size());

  // Work queue: an atomic cursor over the job list. Workers write only
  // their own result slot, so the loop needs no locking, and the result
  // order is the submission order regardless of scheduling.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) return;
      report.jobs[index] = execute_job(jobs[index]);
    }
  };

  if (report.threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(report.threads);
    for (std::size_t i = 0; i < report.threads; ++i) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) t.join();
  }

  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin)  // lint: nondet-ok
                      .count();
  return report;
}

double SweepReport::total_job_wall_s() const {
  double total = 0.0;
  for (const JobResult& job : jobs) total += job.telemetry.total_s;
  return total;
}

std::size_t SweepReport::failed_jobs() const {
  std::size_t failed = 0;
  for (const JobResult& job : jobs) {
    if (!job.ok) ++failed;
  }
  return failed;
}

std::uint64_t SweepReport::invariant_violations() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) total += job.telemetry.invariants.total();
  return total;
}

std::uint64_t SweepReport::fallback_events() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) {
    total += job.telemetry.fallback_backend_retries +
             job.telemetry.fallback_holds;
  }
  return total;
}

JsonValue summary_to_json(const core::SimulationSummary& summary) {
  // JSON keys keep their unit suffixes; the typed fields convert at this
  // serialization boundary (joules -> MWh, quantities -> raw numbers).
  JsonValue::Object object;
  object["policy"] = JsonValue(summary.policy);
  object["total_cost_dollars"] = JsonValue(summary.total_cost.value());
  object["total_energy_mwh"] = JsonValue(units::as_mwh(summary.total_energy));
  JsonValue::Object bill;
  bill["energy_dollars"] = JsonValue(summary.bill.energy.value());
  bill["demand_dollars"] = JsonValue(summary.bill.demand.value());
  bill["coincident_dollars"] = JsonValue(summary.bill.coincident.value());
  bill["total_dollars"] = JsonValue(summary.bill.total().value());
  object["bill"] = JsonValue(std::move(bill));
  object["overload_seconds"] = JsonValue(summary.overload_time.value());
  object["sla_violation_seconds"] =
      JsonValue(summary.sla_violation_time.value());
  object["max_backlog_req"] = JsonValue(summary.max_backlog.value());
  JsonValue::Object volatility;
  volatility["mean_abs_step_w"] =
      JsonValue(summary.total_volatility.mean_abs_step.value());
  volatility["max_abs_step_w"] =
      JsonValue(summary.total_volatility.max_abs_step.value());
  object["total_volatility"] = JsonValue(std::move(volatility));
  JsonValue::Array idcs;
  for (const core::IdcSummary& idc : summary.idcs) {
    JsonValue::Object entry;
    entry["peak_power_w"] = JsonValue(idc.peak_power.value());
    entry["mean_abs_step_w"] = JsonValue(idc.volatility.mean_abs_step.value());
    entry["max_abs_step_w"] = JsonValue(idc.volatility.max_abs_step.value());
    entry["budget_violations"] =
        JsonValue(static_cast<double>(idc.budget.violations));
    entry["mean_latency_s"] = JsonValue(idc.mean_latency.value());
    entry["energy_mwh"] = JsonValue(units::as_mwh(idc.energy));
    entry["cost_dollars"] = JsonValue(idc.cost.value());
    idcs.push_back(JsonValue(std::move(entry)));
  }
  object["idcs"] = JsonValue(std::move(idcs));
  return JsonValue(std::move(object));
}

JsonValue SweepReport::to_json() const {
  JsonValue::Object object;
  object["threads"] = JsonValue(static_cast<double>(threads));
  object["wall_s"] = JsonValue(wall_s);
  object["total_job_wall_s"] = JsonValue(total_job_wall_s());
  object["failed_jobs"] = JsonValue(static_cast<double>(failed_jobs()));
  object["invariant_violations"] =
      JsonValue(static_cast<double>(invariant_violations()));
  object["fallback_events"] = JsonValue(static_cast<double>(fallback_events()));
  JsonValue::Array entries;
  for (const JobResult& job : jobs) {
    JsonValue::Object entry;
    entry["name"] = JsonValue(job.name);
    entry["policy"] = JsonValue(job.policy);
    entry["seed"] = JsonValue(static_cast<double>(job.seed));
    entry["ok"] = JsonValue(job.ok);
    if (!job.ok) entry["error"] = JsonValue(job.error);
    if (job.ok) entry["summary"] = summary_to_json(job.summary);
    entry["telemetry"] = telemetry_to_json(job.telemetry);
    entries.push_back(JsonValue(std::move(entry)));
  }
  object["jobs"] = JsonValue(std::move(entries));
  return JsonValue(std::move(object));
}

}  // namespace gridctl::engine
