// Executable admission plan: an `AdmissionSpec` compiled against a
// concrete workload source, control-tick grid and fleet capacity
// vector into pure lookup tables — per-portal routing epochs, per-tick
// token-bucket admission scales and the plane-wide overload scale.
//
// Everything is precomputed single-threaded at construction and
// immutable afterwards, which is what makes the admission layer
// composable with the control plane's determinism story: a
// `RoutedWorkload` view is a const table lookup times the underlying
// source rate, so a plane run is bit-identical at any worker count,
// and the drain-and-handoff of a re-assigned portal reduces to
// half-open routing epochs — exactly one fleet serves any (portal,
// tick), so the moved portal's demand lands exactly once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/types.hpp"
#include "util/json.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

namespace gridctl::admission {

struct AdmissionSpec;

// The control-tick grid the plan is compiled on: ticks t_k = start_s +
// k*ts_s for k in [0, steps). Matches the fleets' shared scenario
// window (the plane enforces homogeneity).
struct AdmissionGrid {
  double start_s = 0.0;
  double ts_s = 0.0;
  std::uint64_t steps = 0;
};

// Degradation tier of one control tick: nominal, at least one tenant
// clipped by its quota, or the plane-wide overload scale engaged.
enum class Tier : std::uint8_t { kNominal = 0, kQuotaLimited = 1, kOverloaded = 2 };

const char* tier_name(Tier tier);

// Plane-wide shed accounting, in requests (rate x ts summed per tick).
struct TenantUsage {
  std::string id;
  double offered_req = 0.0;
  double admitted_req = 0.0;
  double shed_req = 0.0;
};

struct AdmissionAccounting {
  double offered_req = 0.0;
  double admitted_req = 0.0;
  double shed_req = 0.0;
  std::uint64_t nominal_ticks = 0;
  std::uint64_t quota_limited_ticks = 0;
  std::uint64_t overloaded_ticks = 0;
  std::vector<TenantUsage> tenants;

  double shed_fraction() const {
    return offered_req > 0.0 ? shed_req / offered_req : 0.0;
  }
  JsonValue to_json() const;
};

class AdmissionPlan {
 public:
  // Compiles the spec. `fleet_capacities_rps[f]` is fleet f's total
  // service capacity (sum over its IDCs of max_servers x service_rate);
  // the vector length is the number of fleets routes may target.
  // Throws InvalidArgument ("admission: ...") on a portal/workload
  // width mismatch, an out-of-range fleet index, or a fleet no portal
  // is ever routed to (its controller would have nothing to serve).
  AdmissionPlan(const AdmissionSpec& spec,
                std::shared_ptr<const workload::WorkloadSource> source,
                const AdmissionGrid& grid,
                std::vector<double> fleet_capacities_rps);

  std::size_t num_fleets() const { return fleet_portals_.size(); }
  std::size_t num_portals() const { return epochs_.size(); }
  std::size_t num_tenants() const { return tenant_ids_.size(); }
  std::size_t num_reassignments() const { return num_reassignments_; }
  const AdmissionGrid& grid() const { return grid_; }

  // The fleet serving `portal` at `time` (piecewise-constant over
  // half-open tick epochs — the exactly-once routing guarantee).
  std::size_t fleet_of(std::size_t portal, units::Seconds time) const;

  // Post-quota, post-overload admitted rate of `portal` at `time`:
  // source rate x tenant token-bucket scale x plane overload scale,
  // evaluated on the tick containing `time`.
  double admitted_rate(std::size_t portal, units::Seconds time) const;

  // Global portal indices ever routed to `fleet`, ascending — the
  // fleet's fixed local portal space (local index = position here).
  const std::vector<std::size_t>& fleet_portals(std::size_t fleet) const;

  Tier tier_at_tick(std::uint64_t tick) const;
  const AdmissionAccounting& accounting() const { return accounting_; }

  // Per-tenant token-bucket levels (requests) right before `tick` is
  // consumed — the resume state a checkpoint taken at next_step = tick
  // must agree with.
  std::vector<double> bucket_tokens_before(std::uint64_t tick) const;

  // Static summary for reports: counts, tier tick totals, accounting.
  JsonValue summary_json() const;
  // The full per-portal routing epoch table (checkpoint embedding).
  JsonValue routing_to_json() const;

  const std::string& tenant_id(std::size_t tenant) const {
    return tenant_ids_[tenant];
  }
  std::size_t tenant_of(std::size_t portal) const { return tenant_of_[portal]; }

 private:
  struct Epoch {
    std::uint64_t from_tick = 0;
    std::size_t fleet = 0;
  };

  // The raw-seconds -> tick conversion boundary.
  std::uint64_t tick_of(double time_s) const;  // lint: raw-ok

  AdmissionGrid grid_;
  std::shared_ptr<const workload::WorkloadSource> source_;
  std::vector<std::vector<Epoch>> epochs_;            // per portal, ascending
  std::vector<std::vector<std::size_t>> fleet_portals_;
  std::vector<std::size_t> tenant_of_;                // portal -> tenant
  std::vector<std::string> tenant_ids_;
  std::vector<std::vector<double>> tenant_scale_;     // [tenant][tick]
  std::vector<std::vector<double>> tokens_after_;     // [tenant][tick]
  std::vector<double> initial_tokens_;                // [tenant]
  std::vector<double> overload_scale_;                // [tick]
  std::vector<Tier> tier_;                            // [tick]
  std::size_t num_reassignments_ = 0;
  AdmissionAccounting accounting_;
};

// Per-fleet workload view over the shared plan: portal i (local) is the
// plan's `fleet_portals(fleet)[i]`; its rate is the admitted rate while
// this fleet owns the portal's current routing epoch and exactly zero
// otherwise. Summed across fleets the views reproduce the globally
// admitted stream — the conservation property `verify_exactly_once`
// checks against recorded traces.
class RoutedWorkload : public workload::WorkloadSource {
 public:
  RoutedWorkload(std::shared_ptr<const AdmissionPlan> plan, std::size_t fleet);

  // The WorkloadSource interface is a raw serialization-side boundary.
  double rate(std::size_t portal, double time_s) const override;  // lint: raw-ok
  std::size_t num_portals() const override { return portals_->size(); }

  std::size_t fleet() const { return fleet_; }
  std::size_t global_portal(std::size_t local) const {
    return (*portals_)[local];
  }
  const std::shared_ptr<const AdmissionPlan>& plan() const { return plan_; }

  // Admission resume state for a checkpoint taken at `next_step`: the
  // fleet index, its portal map, the routing epoch table and the
  // token-bucket levels the next tick starts from.
  JsonValue checkpoint_state(std::uint64_t next_step) const;
  // Verifies an embedded checkpoint state matches this plan exactly
  // (routing table, portal map and bucket levels are all derived data,
  // so any drift means the checkpoint belongs to a different admission
  // configuration). Throws InvalidArgument on mismatch.
  void validate_checkpoint_state(const JsonValue& state,
                                 std::uint64_t next_step) const;

 private:
  std::shared_ptr<const AdmissionPlan> plan_;
  std::size_t fleet_ = 0;
  const std::vector<std::size_t>* portals_ = nullptr;  // owned by plan_
};

// Exactly-once conservation check over recorded traces:
// `fleet_portal_rps[f]` is fleet f's recorded `SimulationTrace::portal_rps`
// (local portal x rows; row 0 is the warm-start record, row k+1 is step
// k). For every control tick up to `steps_to_check` and every global
// portal, the demand recorded across all fleets must sum to the plan's
// admitted rate — a moved portal must land exactly once. Returns up to
// `max_violations` check::Violations of kind kRouteExactlyOnce.
std::vector<check::Violation> verify_exactly_once(
    const AdmissionPlan& plan,
    const std::vector<const std::vector<std::vector<double>>*>& fleet_portal_rps,
    std::uint64_t steps_to_check, std::size_t max_violations = 16);

}  // namespace gridctl::admission
