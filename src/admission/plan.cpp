#include "admission/plan.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "admission/spec.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridctl::admission {

namespace {

template <typename T>
JsonValue num(T v) {
  return JsonValue(static_cast<double>(v));
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kNominal: return "nominal";
    case Tier::kQuotaLimited: return "quota_limited";
    case Tier::kOverloaded: return "overloaded";
  }
  return "unknown";
}

JsonValue AdmissionAccounting::to_json() const {
  JsonValue::Object root;
  root.emplace("offered_req", num(offered_req));
  root.emplace("admitted_req", num(admitted_req));
  root.emplace("shed_req", num(shed_req));
  root.emplace("shed_fraction", num(shed_fraction()));
  JsonValue::Object ticks;
  ticks.emplace("nominal", num(nominal_ticks));
  ticks.emplace("quota_limited", num(quota_limited_ticks));
  ticks.emplace("overloaded", num(overloaded_ticks));
  root.emplace("tier_ticks", JsonValue(std::move(ticks)));
  JsonValue::Array usage;
  usage.reserve(tenants.size());
  for (const TenantUsage& tenant : tenants) {
    JsonValue::Object entry;
    entry.emplace("id", JsonValue(tenant.id));
    entry.emplace("offered_req", num(tenant.offered_req));
    entry.emplace("admitted_req", num(tenant.admitted_req));
    entry.emplace("shed_req", num(tenant.shed_req));
    usage.push_back(JsonValue(std::move(entry)));
  }
  root.emplace("tenants", JsonValue(std::move(usage)));
  return JsonValue(std::move(root));
}

AdmissionPlan::AdmissionPlan(
    const AdmissionSpec& spec,
    std::shared_ptr<const workload::WorkloadSource> source,
    const AdmissionGrid& grid, std::vector<double> fleet_capacities_rps)
    : grid_(grid), source_(std::move(source)) {
  spec.validate();
  require(spec.enabled(), "admission: plan needs a non-empty portal registry");
  require(source_ != nullptr, "admission: plan needs a workload source");
  require(std::isfinite(grid_.start_s) && grid_.start_s >= 0.0,
          "admission: grid start time must be >= 0");
  require(std::isfinite(grid_.ts_s) && grid_.ts_s > 0.0,
          "admission: grid tick period must be positive");
  require(grid_.steps > 0, "admission: grid must cover at least one tick");
  require(!fleet_capacities_rps.empty(),
          "admission: plan needs at least one fleet");
  const std::size_t num_fleets = fleet_capacities_rps.size();
  const std::size_t num_portals = spec.portals.size();
  require(source_->num_portals() == num_portals,
          format("admission: workload source has %zu portals but the "
                 "admission block declares %zu (portal i of the block is "
                 "portal i of the source)",
                 source_->num_portals(), num_portals));

  std::unordered_map<std::string, std::size_t> tenant_index;
  tenant_ids_.reserve(spec.tenants.size());
  for (const TenantSpec& tenant : spec.tenants) {
    tenant_index.emplace(tenant.id, tenant_ids_.size());
    tenant_ids_.push_back(tenant.id);
  }
  std::unordered_map<std::string, std::size_t> portal_index;
  tenant_of_.reserve(num_portals);
  epochs_.assign(num_portals, {});
  for (std::size_t p = 0; p < num_portals; ++p) {
    const PortalSpec& portal = spec.portals[p];
    require(portal.fleet < num_fleets,
            format("admission: portals[%zu] '%s': fleet index %zu out of "
                   "range (plane has %zu fleets)",
                   p, portal.id.c_str(), portal.fleet, num_fleets));
    portal_index.emplace(portal.id, p);
    tenant_of_.push_back(tenant_index.at(portal.tenant));
    epochs_[p].push_back(Epoch{0, portal.fleet});
  }

  // Scheduled re-assignments, quantized to the first tick at or after
  // their event time; stable time order keeps same-instant moves of one
  // portal resolving to the spec's declaration order.
  num_reassignments_ = spec.reassignments.size();
  std::vector<std::size_t> order(spec.reassignments.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&spec](std::size_t a, std::size_t b) {
                     return spec.reassignments[a].at_time_s <
                            spec.reassignments[b].at_time_s;
                   });
  for (std::size_t i : order) {
    const ReassignmentSpec& move = spec.reassignments[i];
    require(move.fleet < num_fleets,
            format("admission: reassignments[%zu] ('%s'): fleet index %zu "
                   "out of range (plane has %zu fleets)",
                   i, move.portal.c_str(), move.fleet, num_fleets));
    const std::size_t p = portal_index.at(move.portal);
    std::uint64_t tick = 0;
    if (move.at_time_s > grid_.start_s) {
      tick = static_cast<std::uint64_t>(
          std::ceil((move.at_time_s - grid_.start_s) / grid_.ts_s - 1e-9));
    }
    if (tick >= grid_.steps) continue;  // beyond the run window
    std::vector<Epoch>& epochs = epochs_[p];
    if (epochs.back().from_tick == tick) {
      epochs.back().fleet = move.fleet;
    } else {
      epochs.push_back(Epoch{tick, move.fleet});
    }
  }

  fleet_portals_.assign(num_fleets, {});
  for (std::size_t p = 0; p < num_portals; ++p) {
    std::vector<bool> member(num_fleets, false);
    for (const Epoch& epoch : epochs_[p]) member[epoch.fleet] = true;
    for (std::size_t f = 0; f < num_fleets; ++f) {
      if (member[f]) fleet_portals_[f].push_back(p);
    }
  }
  for (std::size_t f = 0; f < num_fleets; ++f) {
    require(!fleet_portals_[f].empty(),
            format("admission: fleet %zu has no portals routed to it over "
                   "the run window (every fleet needs at least one portal "
                   "to serve)",
                   f));
  }

  // Token-bucket ledger and overload scale, precomputed on the tick
  // grid. Bucket capacity is one period's allowance plus the configured
  // burst depth; the bucket starts with the burst headroom so the first
  // refill fills it exactly. The overload scale is applied downstream
  // of the buckets (it sheds already-admitted demand), so it does not
  // refund tokens.
  const std::size_t num_tenants = tenant_ids_.size();
  double capacity_rps = 0.0;
  for (double c : fleet_capacities_rps) capacity_rps += c;
  capacity_rps *= spec.capacity_margin;

  initial_tokens_.resize(num_tenants);
  std::vector<double> cap_req(num_tenants);
  std::vector<double> refill_req(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    const TenantSpec& tenant = spec.tenants[t];
    refill_req[t] = tenant.quota_rps * grid_.ts_s;
    initial_tokens_[t] = tenant.quota_rps * tenant.burst_s;
    cap_req[t] = refill_req[t] + initial_tokens_[t];
  }
  tenant_scale_.assign(num_tenants, std::vector<double>(grid_.steps, 1.0));
  tokens_after_.assign(num_tenants, std::vector<double>(grid_.steps, 0.0));
  overload_scale_.assign(grid_.steps, 1.0);
  tier_.assign(grid_.steps, Tier::kNominal);
  accounting_.tenants.resize(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    accounting_.tenants[t].id = tenant_ids_[t];
  }

  std::vector<double> tokens = initial_tokens_;
  std::vector<double> offered_rps(num_tenants);
  std::vector<double> admitted_req(num_tenants);
  for (std::uint64_t k = 0; k < grid_.steps; ++k) {
    const double t_k = grid_.start_s + static_cast<double>(k) * grid_.ts_s;
    std::fill(offered_rps.begin(), offered_rps.end(), 0.0);
    for (std::size_t p = 0; p < num_portals; ++p) {
      offered_rps[tenant_of_[p]] += source_->rate(p, t_k);
    }
    bool quota_limited = false;
    double admitted_rps_total = 0.0;
    for (std::size_t t = 0; t < num_tenants; ++t) {
      tokens[t] = std::min(cap_req[t], tokens[t] + refill_req[t]);
      const double demand_req = offered_rps[t] * grid_.ts_s;
      admitted_req[t] = std::min(demand_req, tokens[t]);
      tokens[t] -= admitted_req[t];
      tokens_after_[t][k] = tokens[t];
      const double scale =
          demand_req > 0.0 ? admitted_req[t] / demand_req : 1.0;
      tenant_scale_[t][k] = scale;
      if (scale < 1.0) quota_limited = true;
      admitted_rps_total += offered_rps[t] * scale;
    }
    const bool overloaded = admitted_rps_total > capacity_rps;
    if (overloaded) overload_scale_[k] = capacity_rps / admitted_rps_total;
    tier_[k] = overloaded ? Tier::kOverloaded
                          : (quota_limited ? Tier::kQuotaLimited
                                           : Tier::kNominal);
    switch (tier_[k]) {
      case Tier::kNominal: ++accounting_.nominal_ticks; break;
      case Tier::kQuotaLimited: ++accounting_.quota_limited_ticks; break;
      case Tier::kOverloaded: ++accounting_.overloaded_ticks; break;
    }
    for (std::size_t t = 0; t < num_tenants; ++t) {
      const double demand_req = offered_rps[t] * grid_.ts_s;
      const double final_req = admitted_req[t] * overload_scale_[k];
      accounting_.tenants[t].offered_req += demand_req;
      accounting_.tenants[t].admitted_req += final_req;
      accounting_.tenants[t].shed_req += demand_req - final_req;
      accounting_.offered_req += demand_req;
      accounting_.admitted_req += final_req;
      accounting_.shed_req += demand_req - final_req;
    }
  }
}

std::uint64_t AdmissionPlan::tick_of(double time_s) const {
  if (time_s <= grid_.start_s) return 0;
  const double k = std::floor((time_s - grid_.start_s) / grid_.ts_s + 1e-9);
  const auto tick = static_cast<std::uint64_t>(k);
  return std::min<std::uint64_t>(tick, grid_.steps - 1);
}

std::size_t AdmissionPlan::fleet_of(std::size_t portal,
                                    units::Seconds time) const {
  require(portal < epochs_.size(), "AdmissionPlan::fleet_of: portal index");
  const std::uint64_t tick = tick_of(time.value());
  const std::vector<Epoch>& epochs = epochs_[portal];
  std::size_t fleet = epochs.front().fleet;
  for (const Epoch& epoch : epochs) {
    if (epoch.from_tick > tick) break;
    fleet = epoch.fleet;
  }
  return fleet;
}

double AdmissionPlan::admitted_rate(std::size_t portal,
                                    units::Seconds time) const {
  require(portal < epochs_.size(), "AdmissionPlan::admitted_rate: portal index");
  const std::uint64_t tick = tick_of(time.value());
  return source_->rate(portal, time.value()) *
         tenant_scale_[tenant_of_[portal]][tick] * overload_scale_[tick];
}

const std::vector<std::size_t>& AdmissionPlan::fleet_portals(
    std::size_t fleet) const {
  require(fleet < fleet_portals_.size(),
          "AdmissionPlan::fleet_portals: fleet index");
  return fleet_portals_[fleet];
}

Tier AdmissionPlan::tier_at_tick(std::uint64_t tick) const {
  require(tick < grid_.steps, "AdmissionPlan::tier_at_tick: tick index");
  return tier_[tick];
}

std::vector<double> AdmissionPlan::bucket_tokens_before(
    std::uint64_t tick) const {
  require(tick <= grid_.steps,
          "AdmissionPlan::bucket_tokens_before: tick beyond the grid");
  if (tick == 0) return initial_tokens_;
  std::vector<double> tokens(tenant_ids_.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    tokens[t] = tokens_after_[t][tick - 1];
  }
  return tokens;
}

JsonValue AdmissionPlan::summary_json() const {
  JsonValue::Object root;
  root.emplace("portals", num(num_portals()));
  root.emplace("tenants", num(num_tenants()));
  root.emplace("fleets", num(num_fleets()));
  root.emplace("reassignments", num(num_reassignments_));
  const JsonValue accounting = accounting_.to_json();
  for (const auto& [key, value] : accounting.as_object()) {
    root.emplace(key, value);
  }
  return JsonValue(std::move(root));
}

JsonValue AdmissionPlan::routing_to_json() const {
  JsonValue::Array portals;
  portals.reserve(epochs_.size());
  for (const std::vector<Epoch>& epochs : epochs_) {
    JsonValue::Array entries;
    entries.reserve(epochs.size());
    for (const Epoch& epoch : epochs) {
      JsonValue::Object entry;
      entry.emplace("from_tick", num(epoch.from_tick));
      entry.emplace("fleet", num(epoch.fleet));
      entries.push_back(JsonValue(std::move(entry)));
    }
    portals.push_back(JsonValue(std::move(entries)));
  }
  return JsonValue(std::move(portals));
}

RoutedWorkload::RoutedWorkload(std::shared_ptr<const AdmissionPlan> plan,
                               std::size_t fleet)
    : plan_(std::move(plan)), fleet_(fleet) {
  require(plan_ != nullptr, "RoutedWorkload: null plan");
  portals_ = &plan_->fleet_portals(fleet_);
}

double RoutedWorkload::rate(std::size_t portal, double time_s) const {
  require(portal < portals_->size(), "RoutedWorkload::rate: portal index");
  const std::size_t global = (*portals_)[portal];
  if (plan_->fleet_of(global, units::Seconds{time_s}) != fleet_) return 0.0;
  return plan_->admitted_rate(global, units::Seconds{time_s});
}

JsonValue RoutedWorkload::checkpoint_state(std::uint64_t next_step) const {
  JsonValue::Object root;
  root.emplace("fleet", num(fleet_));
  JsonValue::Array portals;
  portals.reserve(portals_->size());
  for (std::size_t global : *portals_) portals.emplace_back(num(global));
  root.emplace("portals", JsonValue(std::move(portals)));
  root.emplace("routing", plan_->routing_to_json());
  JsonValue::Array tokens;
  for (double level : plan_->bucket_tokens_before(next_step)) {
    tokens.emplace_back(JsonValue(level));
  }
  root.emplace("bucket_tokens_req", JsonValue(std::move(tokens)));
  return JsonValue(std::move(root));
}

void RoutedWorkload::validate_checkpoint_state(const JsonValue& state,
                                               std::uint64_t next_step) const {
  const std::string expected = dump_json(checkpoint_state(next_step));
  const std::string actual = dump_json(state);
  require(expected == actual,
          "admission: checkpoint admission state does not match the plane's "
          "plan (routing table, portal map or token-bucket levels differ) — "
          "resume with the same admission spec and fleet layout");
}

std::vector<check::Violation> verify_exactly_once(
    const AdmissionPlan& plan,
    const std::vector<const std::vector<std::vector<double>>*>& fleet_portal_rps,
    std::uint64_t steps_to_check, std::size_t max_violations) {
  require(fleet_portal_rps.size() == plan.num_fleets(),
          "verify_exactly_once: one portal_rps table per fleet");
  std::vector<check::Violation> violations;
  const AdmissionGrid& grid = plan.grid();
  const std::uint64_t steps = std::min<std::uint64_t>(steps_to_check, grid.steps);
  std::vector<double> recorded(plan.num_portals());
  for (std::uint64_t k = 0; k < steps; ++k) {
    const double t_k = grid.start_s + static_cast<double>(k) * grid.ts_s;
    std::fill(recorded.begin(), recorded.end(), 0.0);
    for (std::size_t f = 0; f < fleet_portal_rps.size(); ++f) {
      const auto& series = *fleet_portal_rps[f];
      const std::vector<std::size_t>& portals = plan.fleet_portals(f);
      require(series.size() == portals.size(),
              "verify_exactly_once: trace portal width does not match the "
              "fleet's routed portal set");
      for (std::size_t i = 0; i < portals.size(); ++i) {
        // Row 0 is the warm-start record; step k is row k+1.
        if (k + 1 < series[i].size()) recorded[portals[i]] += series[i][k + 1];
      }
    }
    for (std::size_t p = 0; p < recorded.size(); ++p) {
      const double expected = plan.admitted_rate(p, units::Seconds{t_k});
      if (recorded[p] == expected) continue;
      check::Violation violation;
      violation.kind = check::Invariant::kRouteExactlyOnce;
      violation.index = p;
      violation.magnitude = std::abs(recorded[p] - expected);
      violation.detail = format(
          "portal %zu at step %llu: fleets recorded %.17g req/s but the "
          "admission plan admitted %.17g req/s",
          p, static_cast<unsigned long long>(k), recorded[p], expected);
      violations.push_back(std::move(violation));
      if (violations.size() >= max_violations) return violations;
    }
  }
  return violations;
}

}  // namespace gridctl::admission
