#include "admission/spec.hpp"

#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridctl::admission {

void AdmissionSpec::validate() const {
  if (!enabled()) return;
  require(!tenants.empty(),
          "admission: portals are declared but 'tenants' is empty (every "
          "portal needs an owning tenant)");

  std::unordered_set<std::string> tenant_ids;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& tenant = tenants[i];
    require(!tenant.id.empty(),
            format("admission: tenants[%zu]: id must be non-empty", i));
    require(tenant_ids.insert(tenant.id).second,
            format("admission: tenants[%zu]: duplicate tenant id '%s'", i,
                   tenant.id.c_str()));
    require(std::isfinite(tenant.quota_rps) && tenant.quota_rps > 0.0,
            format("admission: tenants[%zu] '%s': quota_rps must be positive "
                   "req/s (got %g)",
                   i, tenant.id.c_str(), tenant.quota_rps));
    require(std::isfinite(tenant.burst_s) && tenant.burst_s >= 0.0,
            format("admission: tenants[%zu] '%s': burst_s must be >= 0 "
                   "seconds (got %g)",
                   i, tenant.id.c_str(), tenant.burst_s));
  }

  std::unordered_set<std::string> portal_ids;
  for (std::size_t i = 0; i < portals.size(); ++i) {
    const PortalSpec& portal = portals[i];
    require(!portal.id.empty(),
            format("admission: portals[%zu]: id must be non-empty", i));
    require(portal_ids.insert(portal.id).second,
            format("admission: portals[%zu]: duplicate portal id '%s'", i,
                   portal.id.c_str()));
    require(tenant_ids.count(portal.tenant) > 0,
            format("admission: portals[%zu] '%s': unknown tenant '%s' (declare "
                   "it in 'tenants')",
                   i, portal.id.c_str(), portal.tenant.c_str()));
  }

  for (std::size_t i = 0; i < reassignments.size(); ++i) {
    const ReassignmentSpec& move = reassignments[i];
    require(portal_ids.count(move.portal) > 0,
            format("admission: reassignments[%zu]: unknown portal '%s' "
                   "(declare it in 'portals')",
                   i, move.portal.c_str()));
    require(std::isfinite(move.at_time_s) && move.at_time_s >= 0.0,
            format("admission: reassignments[%zu] ('%s'): at_time_s must be "
                   ">= 0 seconds (got %g)",
                   i, move.portal.c_str(), move.at_time_s));
  }

  require(std::isfinite(capacity_margin) && capacity_margin > 0.0,
          format("admission: capacity_margin must be positive (got %g)",
                 capacity_margin));
}

AdmissionSpec parse_admission(const JsonValue& node) {
  require(node.is_object(),
          "admission: block must be an object {tenants, portals, "
          "reassignments?, capacity_margin?}");
  AdmissionSpec spec;
  require(node.has("tenants"), "admission: missing 'tenants'");
  for (const JsonValue& entry : node.at("tenants").as_array()) {
    require(entry.is_object(),
            format("admission: tenants[%zu] must be an object {id, quota_rps, "
                   "burst_s?}",
                   spec.tenants.size()));
    TenantSpec tenant;
    tenant.id = entry.string_or("id", "");
    require(entry.has("quota_rps"),
            format("admission: tenants[%zu] '%s': missing quota_rps",
                   spec.tenants.size(), tenant.id.c_str()));
    tenant.quota_rps = entry.at("quota_rps").as_number();
    tenant.burst_s = entry.number_or("burst_s", 0.0);
    spec.tenants.push_back(std::move(tenant));
  }
  require(node.has("portals"), "admission: missing 'portals'");
  for (const JsonValue& entry : node.at("portals").as_array()) {
    require(entry.is_object(),
            format("admission: portals[%zu] must be an object {id, tenant, "
                   "fleet}",
                   spec.portals.size()));
    PortalSpec portal;
    portal.id = entry.string_or("id", "");
    portal.tenant = entry.string_or("tenant", "");
    const double fleet = entry.number_or("fleet", 0.0);
    require(fleet >= 0.0 && fleet == std::floor(fleet),
            format("admission: portals[%zu] '%s': fleet must be a "
                   "non-negative fleet index (got %g)",
                   spec.portals.size(), portal.id.c_str(), fleet));
    portal.fleet = static_cast<std::size_t>(fleet);
    spec.portals.push_back(std::move(portal));
  }
  if (node.has("reassignments")) {
    for (const JsonValue& entry : node.at("reassignments").as_array()) {
      require(entry.is_object(),
              format("admission: reassignments[%zu] must be an object "
                     "{portal, fleet, at_time_s}",
                     spec.reassignments.size()));
      ReassignmentSpec move;
      move.portal = entry.string_or("portal", "");
      const double fleet = entry.number_or("fleet", 0.0);
      require(fleet >= 0.0 && fleet == std::floor(fleet),
              format("admission: reassignments[%zu] ('%s'): fleet must be a "
                     "non-negative fleet index (got %g)",
                     spec.reassignments.size(), move.portal.c_str(), fleet));
      move.fleet = static_cast<std::size_t>(fleet);
      require(entry.has("at_time_s"),
              format("admission: reassignments[%zu] ('%s'): missing at_time_s",
                     spec.reassignments.size(), move.portal.c_str()));
      move.at_time_s = entry.at("at_time_s").as_number();
      spec.reassignments.push_back(std::move(move));
    }
  }
  spec.capacity_margin = node.number_or("capacity_margin", spec.capacity_margin);
  spec.validate();
  return spec;
}

JsonValue admission_to_json(const AdmissionSpec& spec) {
  JsonValue::Object root;
  JsonValue::Array tenants;
  tenants.reserve(spec.tenants.size());
  for (const TenantSpec& tenant : spec.tenants) {
    JsonValue::Object entry;
    entry.emplace("id", JsonValue(tenant.id));
    entry.emplace("quota_rps", JsonValue(tenant.quota_rps));
    entry.emplace("burst_s", JsonValue(tenant.burst_s));
    tenants.push_back(JsonValue(std::move(entry)));
  }
  root.emplace("tenants", JsonValue(std::move(tenants)));
  JsonValue::Array portals;
  portals.reserve(spec.portals.size());
  for (const PortalSpec& portal : spec.portals) {
    JsonValue::Object entry;
    entry.emplace("id", JsonValue(portal.id));
    entry.emplace("tenant", JsonValue(portal.tenant));
    entry.emplace("fleet", JsonValue(static_cast<double>(portal.fleet)));
    portals.push_back(JsonValue(std::move(entry)));
  }
  root.emplace("portals", JsonValue(std::move(portals)));
  if (!spec.reassignments.empty()) {
    JsonValue::Array moves;
    moves.reserve(spec.reassignments.size());
    for (const ReassignmentSpec& move : spec.reassignments) {
      JsonValue::Object entry;
      entry.emplace("portal", JsonValue(move.portal));
      entry.emplace("fleet", JsonValue(static_cast<double>(move.fleet)));
      entry.emplace("at_time_s", JsonValue(move.at_time_s));
      moves.push_back(JsonValue(std::move(entry)));
    }
    root.emplace("reassignments", JsonValue(std::move(moves)));
  }
  root.emplace("capacity_margin", JsonValue(spec.capacity_margin));
  return JsonValue(std::move(root));
}

}  // namespace gridctl::admission
