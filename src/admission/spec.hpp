// Admission front-end declarations: who may send traffic (tenants with
// request-rate quotas), where it enters (portals), and which fleet
// serves each portal over time (initial routes plus scheduled mid-run
// re-assignments).
//
// The spec is pure configuration — validated declaratively here,
// compiled into an executable `AdmissionPlan` (admission/plan.hpp) by
// the control plane against a concrete workload source and time grid.
// Keeping the two apart means a scenario file can carry an admission
// block without knowing how many fleets the plane will run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace gridctl::admission {

// A traffic owner with a token-bucket request-rate quota. The bucket
// refills at `quota_rps` and holds `quota_rps * burst_s` requests of
// headroom on top of one control period's allowance, so a tenant may
// briefly exceed its sustained rate by a configured burst before the
// overload controller starts shedding its excess.
struct TenantSpec {
  std::string id;
  double quota_rps = 0.0;  // sustained admitted rate; must be positive
  double burst_s = 0.0;    // extra bucket depth in seconds of quota
};

// One entry point of the workload substrate. Portal order matches the
// workload source: spec portal i is `WorkloadSource` portal i.
struct PortalSpec {
  std::string id;
  std::string tenant;      // owning TenantSpec::id
  std::size_t fleet = 0;   // initial serving fleet (plane index)
};

// A scheduled mid-run route change: from the first control tick at or
// after `at_time_s`, `portal` is served by `fleet`. Quantizing to tick
// boundaries is what makes the handoff a drain-and-switch: the old
// fleet serves every tick before the boundary, the new fleet every tick
// from it, so the portal's demand lands exactly once.
struct ReassignmentSpec {
  std::string portal;
  std::size_t fleet = 0;
  double at_time_s = 0.0;  // absolute event time (scenario clock)
};

struct AdmissionSpec {
  std::vector<TenantSpec> tenants;
  std::vector<PortalSpec> portals;
  std::vector<ReassignmentSpec> reassignments;
  // Plane-wide overload guard: when the quota-admitted aggregate rate
  // exceeds this fraction of the fleets' total service capacity, every
  // admission is scaled down to fit (degradation tier kOverloaded).
  double capacity_margin = 1.0;

  // An empty portal registry means "no admission layer".
  bool enabled() const { return !portals.empty(); }

  // Declarative consistency: unique non-empty ids, known tenant/portal
  // references, positive quotas, finite times. Throws InvalidArgument
  // with an actionable message naming the offending entry.
  void validate() const;
};

// JSON codec for the scenario `admission` block:
//
// {
//   "tenants": [{"id": "acme", "quota_rps": 900, "burst_s": 30}, ...],
//   "portals": [{"id": "p0", "tenant": "acme", "fleet": 0}, ...],
//   "reassignments": [{"portal": "p0", "fleet": 1,
//                      "at_time_s": 25500}, ...],   // optional
//   "capacity_margin": 1.0                          // optional
// }
//
// Parse errors and validate() failures carry the "admission: " prefix;
// the scenario loader adds its own file context on top.
AdmissionSpec parse_admission(const JsonValue& node);
JsonValue admission_to_json(const AdmissionSpec& spec);

}  // namespace gridctl::admission
