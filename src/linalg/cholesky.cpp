#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridctl::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  require(a.square(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / l_(j, j);
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  require(b.size() == n, "Cholesky::solve: dimension mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * x[j];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  require(b.rows() == l_.rows(), "Cholesky::solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = solve(b.col_vector(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Ldlt::Ldlt(const Matrix& a) : l_(Matrix::identity(a.rows())), d_(a.rows()) {
  require(a.square(), "Ldlt: matrix must be square");
  scale_ = a.max_abs();
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l_(j, k) * l_(j, k) * d_[k];
    d_[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k) * d_[k];
      l_(i, j) = (dj != 0.0) ? sum / dj : 0.0;
    }
  }
}

bool Ldlt::singular(double tol) const {
  const double threshold = tol * std::max(scale_, 1.0);
  for (double dj : d_) {
    if (std::abs(dj) <= threshold) return true;
  }
  return false;
}

Vector Ldlt::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  require(b.size() == n, "Ldlt::solve: dimension mismatch");
  if (singular()) throw NumericalError("Ldlt::solve: matrix is singular");
  // L y = b
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l_(i, j) * y[j];
    y[i] = sum;
  }
  // D z = y
  for (std::size_t i = 0; i < n; ++i) y[i] /= d_[i];
  // Lᵀ x = z
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l_(j, ii) * x[j];
    x[ii] = sum;
  }
  return x;
}

}  // namespace gridctl::linalg
