#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gridctl::linalg {

namespace {

// Shared raw-pointer kernels. Both factorizations are left-looking with
// the dot products over the already-computed part of the row; operating
// on the raw row-major storage (instead of the bounds-checked accessor)
// keeps the inner loops branch-free and auto-vectorizable, which is
// what makes the repeated KKT factorizations in the QP solvers cheap.

// Forward substitution L y = b (L lower-triangular, `unit` selects an
// implicit unit diagonal), overwriting b.
void forward_subst(const double* l, std::size_t n, bool unit, double* b) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* lrow = l + i * n;
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lrow[j] * b[j];
    b[i] = unit ? sum : sum / lrow[i];
  }
}

// Back substitution Lᵀ x = b, overwriting b. Walks columns of L (rows
// of Lᵀ) with a saxpy per step so the memory access stays row-major.
void backward_subst(const double* l, std::size_t n, bool unit, double* b) {
  for (std::size_t ii = n; ii-- > 0;) {
    const double x = unit ? b[ii] : b[ii] / l[ii * n + ii];
    b[ii] = x;
    if (x == 0.0) continue;
    for (std::size_t j = 0; j < ii; ++j) b[j] -= l[ii * n + j] * x;
  }
}

}  // namespace

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  require(a.square(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  const double* src = a.data();
  double* l = l_.data();
  for (std::size_t i = 0; i < n; ++i) {
    double* lrow = l + i * n;
    // Off-diagonal entries of row i against prior rows j < i.
    for (std::size_t j = 0; j < i; ++j) {
      const double* ljrow = l + j * n;
      double sum = src[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= lrow[k] * ljrow[k];
      lrow[j] = sum / ljrow[j];
    }
    double diag = src[i * n + i];
    for (std::size_t k = 0; k < i; ++k) diag -= lrow[k] * lrow[k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    lrow[i] = std::sqrt(diag);
  }
}

void Cholesky::solve_in_place(Vector& b) const {
  const std::size_t n = l_.rows();
  require(b.size() == n, "Cholesky::solve: dimension mismatch");
  forward_subst(l_.data(), n, /*unit=*/false, b.data());
  backward_subst(l_.data(), n, /*unit=*/false, b.data());
}

Vector Cholesky::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  require(b.rows() == l_.rows(), "Cholesky::solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    solve_in_place(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Ldlt::Ldlt(const Matrix& a) : l_(Matrix::identity(a.rows())), d_(a.rows()) {
  require(a.square(), "Ldlt: matrix must be square");
  scale_ = a.max_abs();
  const std::size_t n = a.rows();
  const double* src = a.data();
  double* l = l_.data();
  double* d = d_.data();
  // Row-scratch holding l_(i, k) * d_k for the active row, so the inner
  // dot products read two contiguous rows instead of touching d_[k]
  // per element.
  Vector ld(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* lrow = l + i * n;
    for (std::size_t j = 0; j < i; ++j) {
      const double* ljrow = l + j * n;
      double sum = src[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= ld[k] * ljrow[k];
      lrow[j] = (d[j] != 0.0) ? sum / d[j] : 0.0;
      ld[j] = lrow[j] * d[j];
    }
    double di = src[i * n + i];
    for (std::size_t k = 0; k < i; ++k) di -= lrow[k] * ld[k];
    d[i] = di;
  }
}

bool Ldlt::singular(double tol) const {
  const double threshold = tol * std::max(scale_, 1.0);
  for (double dj : d_) {
    if (std::abs(dj) <= threshold) return true;
  }
  return false;
}

void Ldlt::solve_in_place(Vector& b) const {
  const std::size_t n = l_.rows();
  require(b.size() == n, "Ldlt::solve: dimension mismatch");
  if (singular()) throw NumericalError("Ldlt::solve: matrix is singular");
  forward_subst(l_.data(), n, /*unit=*/true, b.data());
  for (std::size_t i = 0; i < n; ++i) b[i] /= d_[i];
  backward_subst(l_.data(), n, /*unit=*/true, b.data());
}

Vector Ldlt::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

}  // namespace gridctl::linalg
