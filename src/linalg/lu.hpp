// LU factorization with partial pivoting, and the solve / inverse /
// determinant / rank operations built on it.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::linalg {

// PA = LU factorization of a square matrix.
class Lu {
 public:
  // Factorizes `a`; throws InvalidArgument if `a` is not square.
  explicit Lu(const Matrix& a);

  // True when a pivot below `tol * max_abs` was encountered.
  bool singular(double tol = 1e-12) const;

  // Solve A x = b; throws NumericalError when singular().
  Vector solve(const Vector& b) const;
  // Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  double determinant() const;

 private:
  Matrix lu_;                     // packed L (unit diag) and U
  std::vector<std::size_t> perm_; // row permutation
  int sign_ = 1;                  // permutation parity
  double scale_ = 0.0;            // max |a_ij| of the input, for tolerances
};

// Convenience one-shot solves.
Vector solve(const Matrix& a, const Vector& b);
Matrix solve(const Matrix& a, const Matrix& b);
Matrix inverse(const Matrix& a);
double determinant(const Matrix& a);

// Numerical rank via Gaussian elimination with full row pivoting on a
// copy; works for rectangular matrices (used by the controllability
// test).
std::size_t rank(const Matrix& a, double tol = 1e-9);

}  // namespace gridctl::linalg
