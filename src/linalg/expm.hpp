// Matrix exponential via scaling-and-squaring with a Padé(13) approximant
// (Higham 2005), plus the block trick that yields zero-order-hold
// discretizations in one call.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::linalg {

// exp(A) for square A.
Matrix expm(const Matrix& a);

// Zero-order-hold discretization of  ẋ = A x + B u  over step `ts`:
//   Phi   = exp(A ts)
//   Gamma = ∫₀^ts exp(A s) ds · B
// computed as the top blocks of exp([[A, B],[0, 0]] ts), which is exact
// even when A is singular (the paper's A has a zero first column).
struct ZohResult {
  Matrix phi;
  Matrix gamma;
};
ZohResult zoh_discretize(const Matrix& a, const Matrix& b, double ts);

}  // namespace gridctl::linalg
