// Symmetric eigendecomposition (cyclic Jacobi).
//
// Sized for the small dense symmetric matrices gridctl diagonalizes —
// the β2 x β2 control-horizon coupling matrix of the condensed MPC
// solver and test fixtures — where Jacobi's unconditional stability and
// orthogonality to machine precision matter more than asymptotics.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::linalg {

struct SymmetricEigen {
  // a = vectors · diag(values) · vectorsᵀ, eigenvalues ascending,
  // eigenvectors in the corresponding columns (orthonormal).
  Vector values;
  Matrix vectors;
};

// Throws InvalidArgument unless `a` is square and symmetric to `sym_tol`
// (relative to max |entry|).
SymmetricEigen symmetric_eigen(const Matrix& a, double sym_tol = 1e-9);

}  // namespace gridctl::linalg
