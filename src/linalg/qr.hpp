// Householder QR factorization and linear least squares.
//
// Used for the unconstrained core of the MPC least-squares problem and as
// a numerically robust fallback for overdetermined systems.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::linalg {

// A = Q R for A (m x n), m >= n, via Householder reflections.
class Qr {
 public:
  explicit Qr(const Matrix& a);

  // Minimize ||A x - b||₂; throws NumericalError when A is rank-deficient.
  Vector solve_least_squares(const Vector& b) const;

  // The upper-triangular factor R (n x n).
  Matrix r() const;
  // Apply Qᵀ to a vector of length m.
  Vector apply_qt(const Vector& b) const;

  bool rank_deficient(double tol = 1e-12) const;

 private:
  Matrix qr_;       // Householder vectors below the diagonal, R on/above
  Vector tau_;      // Householder scalars
  double scale_ = 0.0;
};

// One-shot dense least squares: argmin ||A x - b||₂.
Vector least_squares(const Matrix& a, const Vector& b);

}  // namespace gridctl::linalg
