#include "linalg/qr.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridctl::linalg {

Qr::Qr(const Matrix& a) : qr_(a), tau_(std::min(a.rows(), a.cols())) {
  require(a.rows() >= a.cols(), "Qr: requires rows >= cols");
  scale_ = a.max_abs();
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = (qr_(k, k) >= 0.0) ? -norm : norm;
    // v = x - alpha e1, stored normalized so v[0] = 1.
    const double v0 = qr_(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // = 2 / (vᵀv) with v[0]=1 scaling
    qr_(k, k) = alpha;
    // Apply reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

bool Qr::rank_deficient(double tol) const {
  const double threshold = tol * std::max(scale_, 1.0);
  for (std::size_t k = 0; k < tau_.size(); ++k) {
    if (std::abs(qr_(k, k)) <= threshold) return true;
  }
  return false;
}

Vector Qr::apply_qt(const Vector& b) const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  require(b.size() == m, "Qr::apply_qt: dimension mismatch");
  Vector y(b);
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Matrix Qr::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

Vector Qr::solve_least_squares(const Vector& b) const {
  if (rank_deficient()) {
    throw NumericalError("Qr::solve_least_squares: rank-deficient matrix");
  }
  const std::size_t n = qr_.cols();
  const Vector y = apply_qt(b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= qr_(ii, j) * x[j];
    x[ii] = sum / qr_(ii, ii);
  }
  return x;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  return Qr(a).solve_least_squares(b);
}

}  // namespace gridctl::linalg
