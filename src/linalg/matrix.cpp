#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridctl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    require(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const Vector& v) {
  Matrix m(v.size(), 1);
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

Matrix Matrix::row(const Vector& v) {
  Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  require(r0 + nr <= rows_ && c0 + nc <= cols_,
          "Matrix::block: block exceeds matrix bounds");
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) {
      b.data_[r * nc + c] = data_[(r0 + r) * cols_ + c0 + c];
    }
  }
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  require(r0 + b.rows_ <= rows_ && c0 + b.cols_ <= cols_,
          "Matrix::set_block: block exceeds matrix bounds");
  for (std::size_t r = 0; r < b.rows_; ++r) {
    for (std::size_t c = 0; c < b.cols_; ++c) {
      data_[(r0 + r) * cols_ + c0 + c] = b.data_[r * b.cols_ + c];
    }
  }
}

Vector Matrix::row_vector(std::size_t r) const {
  require(r < rows_, "Matrix::row_vector: index out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col_vector(std::size_t c) const {
  require(c < cols_, "Matrix::col_vector: index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row_sum += std::abs(data_[r * cols_ + c]);
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator+=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator-=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      out << format("%.*g", precision, (*this)(r, c));
      if (c + 1 < cols_) out << ", ";
    }
    out << (r + 1 == rows_ ? "]" : ";\n");
  }
  return out.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }

namespace {

// Blocked GEMM kernel: C += A·B over [i0,i1) x [k0,k1) tiles, i-k-j
// inner order so B and C rows stream through cache. Tiles are sized so
// one A tile plus the touched B/C row panels stay L1/L2-resident; the
// zero-skip on A entries keeps banded/stacked control matrices cheap.
constexpr std::size_t kGemmTile = 64;

void gemm_tiles(const double* a, const double* b, double* c, std::size_t n,
                std::size_t k_dim, std::size_t m) {
  for (std::size_t i0 = 0; i0 < n; i0 += kGemmTile) {
    const std::size_t i1 = std::min(i0 + kGemmTile, n);
    for (std::size_t k0 = 0; k0 < k_dim; k0 += kGemmTile) {
      const std::size_t k1 = std::min(k0 + kGemmTile, k_dim);
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c + i * m;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a[i * k_dim + k];
          if (aik == 0.0) continue;
          const double* brow = b + k * m;
          for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

void multiply_into(const Matrix& a, const Matrix& b, Matrix& c) {
  require(a.cols() == b.rows(), "Matrix multiply: dimension mismatch");
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c.resize(a.rows(), b.cols());
  } else {
    c.set_zero();
  }
  gemm_tiles(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

void multiply_into(const Matrix& a, const Vector& x, Vector& y) {
  require(a.cols() == x.size(), "Matrix*Vector: dimension mismatch");
  y.assign(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.data() + r * a.cols();
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) sum += arow[c] * x[c];
    y[r] = sum;
  }
}

void weighted_gram_into(const Matrix& f, const Vector& w, Matrix& out) {
  const std::size_t rows = f.rows();
  const std::size_t n = f.cols();
  require(w.size() == rows, "weighted_gram: weight size mismatch");
  if (out.rows() != n || out.cols() != n) {
    out.resize(n, n);
  } else {
    out.set_zero();
  }
  // Rank-1 accumulation over rows, upper triangle only; each row r
  // contributes w_r f_r f_rᵀ. Row-major streaming of f keeps the access
  // pattern sequential; the triangle is mirrored at the end.
  double* o = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double wr = w[r];
    if (wr == 0.0) continue;
    const double* frow = f.data() + r * n;
    for (std::size_t i = 0; i < n; ++i) {
      const double fi = wr * frow[i];
      if (fi == 0.0) continue;
      double* orow = o + i * n;
      for (std::size_t j = i; j < n; ++j) orow[j] += fi * frow[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) o[j * n + i] = o[i * n + j];
  }
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "Matrix multiply: dimension mismatch");
  Matrix c(a.rows(), b.cols());
  gemm_tiles(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Matrix operator*(double s, Matrix a) { return a *= s; }
Matrix operator*(Matrix a, double s) { return a *= s; }

Vector operator*(const Matrix& a, const Vector& x) {
  require(a.cols() == x.size(), "Matrix*Vector: dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.data() + r * a.cols();
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) sum += arow[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Matrix hstack(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "hstack: row count mismatch");
  Matrix m(a.rows(), a.cols() + b.cols());
  m.set_block(0, 0, a);
  m.set_block(0, a.cols(), b);
  return m;
}

Matrix vstack(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "vstack: column count mismatch");
  Matrix m(a.rows() + b.rows(), a.cols());
  m.set_block(0, 0, a);
  m.set_block(a.rows(), 0, b);
  return m;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

Vector add(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "add: dimension mismatch");
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "sub: dimension mismatch");
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Vector scale(double s, const Vector& v) {
  Vector out(v);
  for (double& x : out) x *= s;
  return out;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  require(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double quadratic_form(const Matrix& m, const Vector& a) {
  return dot(a, m * a);
}

Vector clamp(const Vector& x, const Vector& lo, const Vector& hi) {
  require(x.size() == lo.size() && x.size() == hi.size(),
          "clamp: dimension mismatch");
  Vector out(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::min(std::max(out[i], lo[i]), hi[i]);
  }
  return out;
}

Vector concat(const Vector& a, const Vector& b) {
  Vector out(a);
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
    }
  }
  return true;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace gridctl::linalg
