// Dense row-major matrix and vector primitives.
//
// gridctl's control problems are small and dense (tens to a few hundred
// variables), so a straightforward dense implementation with clear
// semantics beats a sparse or expression-template design. All storage is
// value-semantic; no aliasing surprises.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace gridctl::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  // rows x cols, all entries `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const Vector& d);
  // Column vector (n x 1) from a Vector.
  static Matrix column(const Vector& v);
  // Row vector (1 x n) from a Vector.
  static Matrix row(const Vector& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  // Reshape to rows x cols, all entries zero. Reuses the existing
  // storage when the element count allows (the arena-reuse primitive:
  // a shape-stable hot loop pays no allocation after warm-up).
  void resize(std::size_t rows, std::size_t cols);
  // Set every entry to zero, keeping the shape.
  void set_zero();

  // Raw storage access (row-major), for tight loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix transpose() const;

  // Submatrix copy: `nr` x `nc` block with top-left corner (r0, c0).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;
  // Write `b` into this matrix with top-left corner (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b);

  // One row / column as a Vector.
  Vector row_vector(std::size_t r) const;
  Vector col_vector(std::size_t c) const;

  // Frobenius norm and infinity (max-row-sum) norm.
  double frobenius_norm() const;
  double inf_norm() const;
  // Largest |entry|.
  double max_abs() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(const Matrix& a, const Matrix& b);
Matrix operator*(double s, Matrix a);
Matrix operator*(Matrix a, double s);
Vector operator*(const Matrix& a, const Vector& x);

// c = a * b without allocating when c already has the right shape.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& c);
// y = a * x without allocating when y already has the right size.
void multiply_into(const Matrix& a, const Vector& x, Vector& y);
// Symmetric weighted Gram product FᵀWF (W = diag(w), w >= 0 assumed
// validated by the caller). Exploits symmetry — half the multiplies of
// the generic transpose()+operator* route — with a blocked rank-k
// update over the rows of F for cache locality. `out` is resized to
// n x n and fully overwritten.
void weighted_gram_into(const Matrix& f, const Vector& w, Matrix& out);

// Stack horizontally / vertically; dimension-checked.
Matrix hstack(const Matrix& a, const Matrix& b);
Matrix vstack(const Matrix& a, const Matrix& b);

// Vector helpers -----------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v);
double norm_inf(const Vector& v);
Vector add(const Vector& a, const Vector& b);
Vector sub(const Vector& a, const Vector& b);
Vector scale(double s, const Vector& v);
// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
// aᵀ M a convenience for quadratic forms.
double quadratic_form(const Matrix& m, const Vector& a);
// x with every entry clamped to [lo[i], hi[i]].
Vector clamp(const Vector& x, const Vector& lo, const Vector& hi);
Vector concat(const Vector& a, const Vector& b);

// Approximate comparison used by tests and iterative solvers.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);
bool approx_equal(const Vector& a, const Vector& b, double tol = 1e-9);

}  // namespace gridctl::linalg
