#include "linalg/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridctl::linalg {

Lu::Lu(const Matrix& a) : lu_(a) {
  require(a.square(), "Lu: matrix must be square");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  scale_ = a.max_abs();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, k));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    const double diag = lu_(k, k);
    if (diag == 0.0) continue;  // leaves a zero pivot; singular() reports it
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

bool Lu::singular(double tol) const {
  const double threshold = tol * std::max(scale_, 1.0);
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    if (std::abs(lu_(i, i)) <= threshold) return true;
  }
  return false;
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  require(b.size() == n, "Lu::solve: dimension mismatch");
  if (singular()) throw NumericalError("Lu::solve: matrix is singular");
  // Forward substitution with permuted b (L has unit diagonal).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * y[j];
    y[i] = sum;
  }
  // Backward substitution.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  require(b.rows() == lu_.rows(), "Lu::solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = solve(b.col_vector(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double Lu::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }
Matrix solve(const Matrix& a, const Matrix& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) {
  return Lu(a).solve(Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) { return Lu(a).determinant(); }

std::size_t rank(const Matrix& a, double tol) {
  Matrix m(a);
  const std::size_t rows = m.rows(), cols = m.cols();
  const double threshold = tol * std::max(m.max_abs(), 1.0);
  std::size_t rank_count = 0;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    std::size_t best_row = pivot_row;
    double best = std::abs(m(pivot_row, col));
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      if (std::abs(m(r, col)) > best) {
        best = std::abs(m(r, col));
        best_row = r;
      }
    }
    if (best <= threshold) continue;
    if (best_row != pivot_row) {
      for (std::size_t c = 0; c < cols; ++c) {
        std::swap(m(pivot_row, c), m(best_row, c));
      }
    }
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double factor = m(r, col) / m(pivot_row, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < cols; ++c) {
        m(r, c) -= factor * m(pivot_row, c);
      }
    }
    ++rank_count;
    ++pivot_row;
  }
  return rank_count;
}

}  // namespace gridctl::linalg
