#include "linalg/expm.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace gridctl::linalg {
namespace {

// Padé(13) coefficients from Higham, "The scaling and squaring method for
// the matrix exponential revisited", SIAM J. Matrix Anal. 2005.
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: the 1-norm bound under which Padé(13) is accurate to double
// precision without scaling.
constexpr double kTheta13 = 5.371920351148152;

}  // namespace

Matrix expm(const Matrix& a) {
  require(a.square(), "expm: matrix must be square");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix();

  // Choose scaling s so that ||A / 2^s|| <= theta_13.
  const double norm = a.inf_norm();
  int squarings = 0;
  Matrix scaled = a;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
    scaled *= std::ldexp(1.0, -squarings);
  }

  // Padé(13): r(A) = [V - U]⁻¹ [V + U] with
  //   U = A (b13 A12 + b11 A10 + ... + b1 I)
  //   V =    b12 A12 + b10 A10 + ... + b0 I
  const Matrix identity_n = Matrix::identity(n);
  const Matrix a2 = scaled * scaled;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a4 * a2;

  // U = A * (A6*(b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  Matrix u_inner = kPade13[13] * a6 + kPade13[11] * a4 + kPade13[9] * a2;
  u_inner = a6 * u_inner;
  u_inner += kPade13[7] * a6 + kPade13[5] * a4 + kPade13[3] * a2 +
             kPade13[1] * identity_n;
  const Matrix u = scaled * u_inner;

  // V = A6*(b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  Matrix v_inner = kPade13[12] * a6 + kPade13[10] * a4 + kPade13[8] * a2;
  Matrix v = a6 * v_inner;
  v += kPade13[6] * a6 + kPade13[4] * a4 + kPade13[2] * a2 +
       kPade13[0] * identity_n;

  Matrix result = Lu(v - u).solve(v + u);
  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

ZohResult zoh_discretize(const Matrix& a, const Matrix& b, double ts) {
  require(a.square(), "zoh_discretize: A must be square");
  require(a.rows() == b.rows(), "zoh_discretize: A/B row mismatch");
  require(ts > 0.0, "zoh_discretize: sampling period must be positive");
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  // Augmented matrix [[A, B], [0, 0]] * ts.
  Matrix aug(n + m, n + m);
  aug.set_block(0, 0, a);
  aug.set_block(0, n, b);
  aug *= ts;
  const Matrix e = expm(aug);
  return ZohResult{e.block(0, 0, n, n), e.block(0, n, n, m)};
}

}  // namespace gridctl::linalg
