// Cholesky (LLᵀ) and LDLᵀ factorizations for symmetric systems.
//
// The ADMM QP solver refactorizes a symmetric quasi-definite KKT matrix;
// LDLᵀ handles the indefinite (+ρI / −I/σ) blocks, while plain Cholesky
// serves strictly positive-definite normal equations.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::linalg {

// A = L Lᵀ with L lower-triangular; requires symmetric positive-definite.
class Cholesky {
 public:
  // Throws NumericalError when `a` is not (numerically) SPD.
  explicit Cholesky(const Matrix& a);

  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;
  // Overwrites `b` with A⁻¹b; allocation-free (the arena-friendly form
  // used by the condensed MPC solver's hot loop).
  void solve_in_place(Vector& b) const;

  const Matrix& lower() const { return l_; }

 private:
  Matrix l_;
};

// A = L D Lᵀ with unit-lower-triangular L and diagonal D (no pivoting;
// adequate for the quasi-definite KKT systems gridctl builds, whose
// diagonal is bounded away from zero by construction).
class Ldlt {
 public:
  explicit Ldlt(const Matrix& a);

  bool singular(double tol = 1e-12) const;
  Vector solve(const Vector& b) const;
  // Overwrites `b` with A⁻¹b; allocation-free.
  void solve_in_place(Vector& b) const;

  const Matrix& unit_lower() const { return l_; }
  const Vector& diag() const { return d_; }

 private:
  Matrix l_;
  Vector d_;
  double scale_ = 0.0;
};

}  // namespace gridctl::linalg
