#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace gridctl::linalg {

SymmetricEigen symmetric_eigen(const Matrix& a, double sym_tol) {
  require(a.square(), "symmetric_eigen: matrix must be square");
  const std::size_t n = a.rows();
  const double scale = a.max_abs();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      require(std::abs(a(i, j) - a(j, i)) <= sym_tol * std::max(scale, 1.0),
              "symmetric_eigen: matrix is not symmetric");
    }
  }

  SymmetricEigen out;
  out.vectors = Matrix::identity(n);
  if (n == 0) return out;

  Matrix work = a;
  // Cyclic Jacobi: sweep all (p, q) pairs, rotating each off-diagonal
  // entry to zero; off-diagonal mass decays quadratically once small.
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += work(p, q) * work(p, q);
    }
    if (off <= 1e-30 * std::max(scale * scale, 1.0)) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (apq == 0.0) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);
        // Stable rotation (Golub & Van Loan, Alg. 8.4.1).
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = work(k, p);
          const double wkq = work(k, q);
          work(k, p) = c * wkp - s * wkq;
          work(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = work(p, k);
          const double wqk = work(q, k);
          work(p, k) = c * wpk - s * wqk;
          work(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = out.vectors(k, p);
          const double vkq = out.vectors(k, q);
          out.vectors(k, p) = c * vkp - s * vkq;
          out.vectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending, permuting the eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return work(i, i) < work(j, j);
  });
  out.values.resize(n);
  Matrix sorted(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = work(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) {
      sorted(r, c) = out.vectors(r, order[c]);
    }
  }
  out.vectors = std::move(sorted);
  return out;
}

}  // namespace gridctl::linalg
