// Runtime invariant checking for controller decisions.
//
// The paper's control method only beats the optimal baseline if its
// hard guarantees actually hold every period: workload conservation
// across portals (eq. 26), non-negative allocation (eq. 34), per-IDC
// power under the enforced load caps, and the eq.-35 server lower
// bound. A sweep over thousands of scenarios cannot eyeball those, so
// `InvariantChecker` re-derives each guarantee from first principles
// after every `CostController::step` and counts what broke. Violations
// surface per-run in `engine::RunTelemetry` / the SweepReport JSON; in
// strict mode they throw and fail the job instead.
#pragma once

#include <cstddef>
#include <vector>

#include "check/types.hpp"
#include "control/sleep_controller.hpp"
#include "datacenter/fleet.hpp"
#include "datacenter/idc.hpp"
#include "util/units.hpp"

namespace gridctl::check {

// Per-IDC power of the continuous-relaxation plant model the controller
// tracks: P_j(lambda) = (b1 + b0/mu) lambda + b0/(mu D) — eq. (35)'s
// server count substituted into the eq.-(7) power model.
units::Watts continuous_power_w(const datacenter::IdcConfig& idc,
                                units::Rps lambda);

// The per-IDC load caps the controller enforced this period: capacity
// caps by default; replaced by budget-derived caps when hard budget
// constraints are enabled and jointly feasible for the served demand
// (mirrors CostController::build_constraints). The returned caps and
// `served_demands` are raw req/s bulk buffers: they feed straight into
// the solver-side constraint rows.
std::vector<double> effective_load_caps(
    const std::vector<datacenter::IdcConfig>& idcs,
    const std::vector<units::Watts>& power_budgets_w,
    bool budget_hard_constraints, const std::vector<double>& served_demands);

class InvariantChecker {
 public:
  // `sleep` must match the controller's provisioning options: exact_mmn
  // changes the eq.-35 bound itself, and a non-zero max_ramp_per_step
  // disables the lower-bound check entirely (with a ramp limit the slow
  // loop is *allowed* to lag the bound while it powers servers on).
  InvariantChecker(std::vector<datacenter::IdcConfig> idcs,
                   std::size_t portals,
                   std::vector<units::Watts> power_budgets_w,
                   bool budget_hard_constraints,
                   control::SleepControllerOptions sleep = {},
                   CheckOptions options = {});

  // Validate one decision against the demand it had to serve.
  // `served_demands` is the post-shedding portal demand the allocation
  // must conserve; `predicted_power_w` the controller's per-IDC power
  // prediction for the applied input. When the decision dispatched
  // batteries, `battery_soc_j` (end-of-period state of charge, joules)
  // and `battery_w` (net output, positive = discharging) are checked
  // against each IDC's BatteryConfig bounds; empty vectors skip the SoC
  // invariant (the storage feature is off). Accumulates into counts()
  // and returns this call's violations (empty = all invariants hold).
  // Throws InvariantViolationError instead when options().strict.
  std::vector<Violation> check(const datacenter::Allocation& allocation,
                               const std::vector<std::size_t>& servers,
                               const std::vector<double>& predicted_power_w,
                               const std::vector<double>& served_demands,
                               const std::vector<double>& battery_soc_j = {},
                               const std::vector<double>& battery_w = {});

  const InvariantCounts& counts() const { return counts_; }
  const CheckOptions& options() const { return options_; }

 private:
  std::vector<datacenter::IdcConfig> idcs_;
  std::size_t portals_;
  std::vector<units::Watts> budgets_;
  bool budget_hard_;
  bool ramp_limited_;
  CheckOptions options_;
  control::SleepController sleep_;
  InvariantCounts counts_;
};

}  // namespace gridctl::check
