#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "control/reference_optimizer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridctl::check {

using datacenter::Allocation;
using datacenter::IdcConfig;

const char* invariant_name(Invariant kind) {
  switch (kind) {
    case Invariant::kConservation: return "conservation";
    case Invariant::kNonNegativity: return "non_negativity";
    case Invariant::kBudget: return "budget";
    case Invariant::kServerBound: return "server_bound";
    case Invariant::kFinite: return "finite";
    case Invariant::kSocBounds: return "soc_bounds";
    case Invariant::kRouteExactlyOnce: return "route_exactly_once";
  }
  return "unknown";
}

const char* fallback_tier_name(FallbackTier tier) {
  switch (tier) {
    case FallbackTier::kNone: return "none";
    case FallbackTier::kBackendRetry: return "backend_retry";
    case FallbackTier::kHoldLastFeasible: return "hold_last_feasible";
  }
  return "unknown";
}

std::string describe(const std::vector<Violation>& violations) {
  std::string text;
  for (const Violation& violation : violations) {
    if (!text.empty()) text += "; ";
    text += format("%s[%zu]: ", invariant_name(violation.kind),
                   violation.index);
    text += violation.detail;
  }
  return text;
}

units::Watts continuous_power_w(const IdcConfig& idc, units::Rps lambda) {
  const double slope = idc.power.watts_per_rps() +
                       idc.power.idle_w.value() / idc.power.service_rate.value();
  return units::Watts{slope * lambda.value() +
                      idc.power.idle_w.value() /
                          (idc.power.service_rate.value() *
                           idc.latency_bound_s.value())};
}

std::vector<double> effective_load_caps(
    const std::vector<IdcConfig>& idcs,
    const std::vector<units::Watts>& power_budgets_w,
    bool budget_hard_constraints, const std::vector<double>& served_demands) {
  const std::size_t n = idcs.size();
  std::vector<double> caps(n);
  for (std::size_t j = 0; j < n; ++j) {
    caps[j] = control::load_cap_for_capacity(idcs[j]);
  }
  if (budget_hard_constraints && !power_budgets_w.empty()) {
    double total_demand = 0.0;
    for (double demand : served_demands) total_demand += demand;
    double total_cap = 0.0;
    std::vector<double> budget_caps(n);
    for (std::size_t j = 0; j < n; ++j) {
      budget_caps[j] =
          control::load_cap_for_budget(idcs[j], power_budgets_w[j].value());
      total_cap += budget_caps[j];
    }
    if (total_cap >= total_demand) caps = std::move(budget_caps);
  }
  return caps;
}

InvariantChecker::InvariantChecker(std::vector<IdcConfig> idcs,
                                   std::size_t portals,
                                   std::vector<units::Watts> power_budgets_w,
                                   bool budget_hard_constraints,
                                   control::SleepControllerOptions sleep,
                                   CheckOptions options)
    : idcs_(std::move(idcs)),
      portals_(portals),
      budgets_(std::move(power_budgets_w)),
      budget_hard_(budget_hard_constraints),
      ramp_limited_(sleep.max_ramp_per_step > 0),
      options_(options),
      sleep_(idcs_, sleep) {
  require(!idcs_.empty(), "InvariantChecker: need at least one IDC");
  require(portals_ > 0, "InvariantChecker: need at least one portal");
  require(budgets_.empty() || budgets_.size() == idcs_.size(),
          "InvariantChecker: budget size mismatch");
  require(options_.conservation_tol > 0.0 && options_.budget_tol > 0.0 &&
              options_.nonneg_tol_rps >= 0.0,
          "InvariantChecker: tolerances must be positive");
}

std::vector<Violation> InvariantChecker::check(
    const Allocation& allocation, const std::vector<std::size_t>& servers,
    const std::vector<double>& predicted_power_w,
    const std::vector<double>& served_demands,
    const std::vector<double>& battery_soc_j,
    const std::vector<double>& battery_w) {
  const std::size_t n = idcs_.size();
  require(allocation.portals() == portals_ && allocation.idcs() == n,
          "InvariantChecker: allocation shape mismatch");
  require(servers.size() == n, "InvariantChecker: server vector size mismatch");
  require(served_demands.size() == portals_,
          "InvariantChecker: demand size mismatch");
  require(battery_soc_j.empty() || battery_soc_j.size() == n,
          "InvariantChecker: battery SoC size mismatch");
  require(battery_w.empty() || battery_w.size() == n,
          "InvariantChecker: battery power size mismatch");

  std::vector<Violation> violations;
  const auto flag = [&](Invariant kind, std::size_t index, double magnitude,
                        std::string detail) {
    ++counts_.by_kind[static_cast<std::size_t>(kind)];
    violations.push_back(
        Violation{kind, index, magnitude, std::move(detail)});
  };
  ++counts_.checks;

  // Finiteness first: a NaN poisons every comparison below (and would
  // silently pass them — NaN compares false), so flag and bail per IDC.
  bool finite = true;
  for (std::size_t i = 0; i < portals_; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!std::isfinite(allocation.at(i, j))) {
        flag(Invariant::kFinite, j, 0.0,
             format("lambda(%zu,%zu) is not finite", i, j));
        finite = false;
      }
    }
  }
  for (std::size_t j = 0; j < predicted_power_w.size(); ++j) {
    if (!std::isfinite(predicted_power_w[j])) {
      flag(Invariant::kFinite, j, 0.0,
           format("predicted power of IDC %zu is not finite", j));
      finite = false;
    }
  }
  if (finite) {
    // Portal simplex: sum_j lambda_ij = lambda_i within tolerance and
    // every entry non-negative.
    for (std::size_t i = 0; i < portals_; ++i) {
      const double row = allocation.portal_load(i).value();
      const double scale = std::max(1.0, std::abs(served_demands[i]));
      const double gap = std::abs(row - served_demands[i]);
      if (gap > options_.conservation_tol * scale) {
        flag(Invariant::kConservation, i, gap,
             format("portal %zu allocates %.6g req/s of %.6g demanded", i,
                    row, served_demands[i]));
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double value = allocation.at(i, j);
        if (value < -options_.nonneg_tol_rps) {
          flag(Invariant::kNonNegativity, j, -value,
               format("lambda(%zu,%zu) = %.6g < 0", i, j, value));
        }
      }
    }

    // Clamped power caps: both the applied load and the predicted power
    // must respect the caps the controller enforced this period.
    const std::vector<double> caps =
        effective_load_caps(idcs_, budgets_, budget_hard_, served_demands);
    const std::vector<double> loads =
        units::raw_vector(allocation.idc_loads());
    for (std::size_t j = 0; j < n; ++j) {
      const double load_slack = options_.budget_tol * std::max(1.0, caps[j]);
      if (loads[j] > caps[j] + load_slack) {
        flag(Invariant::kBudget, j, loads[j] - caps[j],
             format("IDC %zu load %.6g req/s exceeds its cap %.6g", j,
                    loads[j], caps[j]));
      }
      if (j < predicted_power_w.size()) {
        const double cap_power =
            continuous_power_w(idcs_[j], units::Rps{caps[j]}).value();
        const double allowed =
            cap_power * (1.0 + options_.budget_tol) + 1.0;  // +1 W absolute
        if (predicted_power_w[j] > allowed) {
          flag(Invariant::kBudget, j, predicted_power_w[j] - cap_power,
               format("IDC %zu predicted power %.6g W exceeds the clamped "
                      "cap %.6g W",
                      j, predicted_power_w[j], cap_power));
        }
      }
    }

    // Battery SoC bounds and power limits, per IDC with storage. The
    // dispatcher keeps SoC in [min, max]·capacity by construction; the
    // checker re-derives it from the decision like every other
    // invariant. Tolerance is relative to the capacity (resp. power
    // limit) — the same headroom philosophy as the budget check.
    if (!battery_soc_j.empty()) {
      for (std::size_t j = 0; j < n; ++j) {
        const auto& battery = idcs_[j].battery;
        if (!battery.present()) continue;
        const double cap = battery.capacity.value();
        const double soc = battery_soc_j[j];
        if (!std::isfinite(soc)) {
          flag(Invariant::kSocBounds, j, 0.0,
               format("IDC %zu battery SoC is not finite", j));
          continue;
        }
        const double soc_slack = options_.budget_tol * cap;
        const double lo = battery.min_soc * cap;
        const double hi = battery.max_soc * cap;
        if (soc < lo - soc_slack || soc > hi + soc_slack) {
          flag(Invariant::kSocBounds, j,
               soc < lo ? lo - soc : soc - hi,
               format("IDC %zu battery SoC %.6g J outside [%.6g, %.6g]", j,
                      soc, lo, hi));
        }
        if (j < battery_w.size() && std::isfinite(battery_w[j])) {
          const double limit = battery_w[j] >= 0.0
                                   ? battery.max_discharge_w.value()
                                   : battery.max_charge_w.value();
          const double allowed =
              limit * (1.0 + options_.budget_tol) + 1.0;  // +1 W absolute
          if (std::abs(battery_w[j]) > allowed) {
            flag(Invariant::kSocBounds, j, std::abs(battery_w[j]) - limit,
                 format("IDC %zu battery power %.6g W exceeds its %.6g W "
                        "limit",
                        j, battery_w[j], limit));
          }
        } else if (j < battery_w.size()) {
          flag(Invariant::kSocBounds, j, 0.0,
               format("IDC %zu battery power is not finite", j));
        }
      }
    }

    // Eq. (35) lower bound: enough servers for the applied load (skipped
    // under a ramp limit — the slow loop may legitimately lag).
    if (!ramp_limited_) {
      for (std::size_t j = 0; j < n; ++j) {
        const double load = std::max(0.0, loads[j]);
        const std::size_t bound = sleep_.target_servers(j, load);
        if (servers[j] < bound) {
          flag(Invariant::kServerBound, j,
               static_cast<double>(bound - servers[j]),
               format("IDC %zu holds %zu servers, eq. (35) requires %zu at "
                      "%.6g req/s",
                      j, servers[j], bound, load));
        }
      }
    }
  }

  if (!violations.empty() && options_.strict) {
    throw InvariantViolationError("invariant violation: " +
                                  describe(violations));
  }
  return violations;
}

}  // namespace gridctl::check
