// Plain data types of the runtime invariant-checking and
// graceful-degradation subsystem (`gridctl::check`).
//
// This header is dependency-free on purpose: `ControllerParams`
// (core/scenario.hpp) embeds `CheckOptions`, and the header-only
// `engine::RunTelemetry` accumulates `InvariantCounts`, so both must be
// able to include it without pulling in the controller stack. The
// checker itself lives in check/invariants.hpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gridctl::check {

// The hard guarantees the paper's control method rests on, checked
// against every `CostController::Decision`.
enum class Invariant : std::size_t {
  kConservation = 0,  // per portal: sum_j lambda_ij = lambda_i (eq. 26)
  kNonNegativity,     // lambda_ij >= 0 (eq. 34)
  kBudget,            // per-IDC power within the clamped budget/capacity cap
  kServerBound,       // m_j >= eq. (35)'s lower bound at the applied load
  kFinite,            // allocation, power and reference stay finite
  kSocBounds,         // battery SoC in [min, max]·capacity, power in limits
  kRouteExactlyOnce,  // admission: a portal's demand lands on exactly one fleet
};

inline constexpr std::size_t kNumInvariants = 7;

const char* invariant_name(Invariant kind);

// One recorded violation: which invariant broke, where, and by how much.
struct Violation {
  Invariant kind = Invariant::kConservation;
  std::size_t index = 0;   // portal (conservation) or IDC (the rest)
  double magnitude = 0.0;  // violation size in the invariant's own units
  std::string detail;      // human-readable, ready for a report/exception
};

// Running violation counters, cheap enough to accumulate per step and
// sum per run.
struct InvariantCounts {
  std::uint64_t checks = 0;  // decisions examined
  std::array<std::uint64_t, kNumInvariants> by_kind{};

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t count : by_kind) sum += count;
    return sum;
  }
  void merge(const InvariantCounts& other) {
    checks += other.checks;
    for (std::size_t i = 0; i < kNumInvariants; ++i) {
      by_kind[i] += other.by_kind[i];
    }
  }
};

// How far down the solver degradation chain one control period had to
// go. Tier 0 is the configured QP backend converging; tier 1 re-solves
// the same problem with the alternate backend; tier 2 abandons the
// period's QP entirely and re-applies the last feasible allocation
// projected onto the current constraints.
enum class FallbackTier : std::uint8_t {
  kNone = 0,
  kBackendRetry = 1,
  kHoldLastFeasible = 2,
};

const char* fallback_tier_name(FallbackTier tier);

struct CheckOptions {
  bool enabled = true;   // run the checker each period
  bool strict = false;   // throw InvariantViolationError on any violation
  // Relative tolerance per portal on workload conservation.
  double conservation_tol = 1e-6;
  // Allocation entries may undershoot zero by this much (absolute req/s)
  // before counting as a violation.
  double nonneg_tol_rps = 1e-9;
  // Power may exceed the clamped cap by this relative margin plus one
  // watt absolute (QP convergence tolerance headroom).
  double budget_tol = 1e-4;
};

// Thrown by strict mode when a decision violates an invariant; carries
// the formatted violation list in what().
class InvariantViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// "kind[index]: detail; kind[index]: detail; ..." for exceptions/logs.
std::string describe(const std::vector<Violation>& violations);

}  // namespace gridctl::check
