#include "control/mpc.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;
using linalg::Vector;

namespace {
const Vector kEmptyVector;
}  // namespace

MpcController::MpcController(MpcPlant plant, MpcConfig config)
    : plant_(std::move(plant)), config_(std::move(config)) {
  config_.horizons.validate();
  refresh_plant_cache();
  config_.constraints.validate(plant_.num_inputs());
}

void MpcController::refresh_plant_cache() {
  plant_.validate();
  require(config_.weights.q.size() == plant_.num_outputs(),
          "MpcController: Q weight size mismatch");
  require(config_.weights.r.size() == plant_.num_inputs(),
          "MpcController: R weight size mismatch");
  theta_dirty_ = true;
  condensed_ready_ = false;
  plant_dirty_ = false;

  // Transport-structure scan: stateless plant whose output j reads only
  // the per-IDC column sum (c_u(j, i·N + j) = slope_j, zero elsewhere),
  // uniform move penalty, non-negative tracking weights. These are the
  // assumptions the condensed factorization bakes in; anything else
  // solves densely.
  transport_structure_ = false;
  const std::size_t p = plant_.num_outputs();
  const std::size_t m = plant_.num_inputs();
  if (plant_.num_states() != 0 || p == 0 || m % p != 0) return;
  const double r0 = config_.weights.r[0];
  for (const double rj : config_.weights.r) {
    if (rj != r0) return;
  }
  if (!(r0 >= 0.0) || !std::isfinite(r0)) return;
  for (const double qj : config_.weights.q) {
    if (!(qj >= 0.0) || !std::isfinite(qj)) return;
  }
  cnd_slope_.assign(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) cnd_slope_[j] = plant_.c_u(j, j);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      const double expect = (k % p == j) ? cnd_slope_[j] : 0.0;
      if (plant_.c_u(j, k) != expect) return;
    }
  }
  cnd_r_ = r0;
  transport_structure_ = true;
}

bool MpcController::condensed_active() const {
  if (config_.backend != solvers::LsqBackend::kCondensed) return false;
  if (!transport_structure_ || !transport_.has_value()) return false;
  const std::size_t p = plant_.num_outputs();
  return transport_->idcs() == p &&
         transport_->portals() * p == plant_.num_inputs();
}

void MpcController::restore_warm_start(linalg::Vector warm_start) {
  require(warm_start.empty() ||
              warm_start.size() ==
                  plant_.num_inputs() * config_.horizons.control,
          "MpcController: restored warm start has the wrong length");
  warm_start_ = std::move(warm_start);
}

void MpcController::restore_warm_dual(linalg::Vector warm_dual) {
  // Deliberately lenient: a dual from a differently-shaped (or dense)
  // run is simply ignored by the solver, exactly as a cold start.
  warm_dual_ = std::move(warm_dual);
}

void MpcController::set_constraints(InputConstraints constraints) {
  constraints.validate(plant_.num_inputs());
  config_.constraints = std::move(constraints);
  transport_.reset();
  dense_constraints_dirty_ = true;
}

void MpcController::set_constraints(TransportConstraints constraints) {
  constraints.validate();
  require(constraints.portals() * constraints.idcs() == plant_.num_inputs(),
          "MpcController: transport constraint shape mismatch");
  transport_ = std::move(constraints);
  dense_constraints_dirty_ = true;
}

MpcResult MpcController::step(const MpcStep& input) {
  MpcResult result;
  step_into(input, result);
  return result;
}

void MpcController::step_into(const MpcStep& input, MpcResult& result) {
  if (plant_dirty_) refresh_plant_cache();
  const std::size_t m = plant_.num_inputs();
  const std::size_t p = plant_.num_outputs();
  const std::size_t b2 = config_.horizons.control;
  require(input.u_prev.size() == m, "MpcController: u_prev size mismatch");
  require(!input.references.empty(), "MpcController: no references");
  for (const auto& r : input.references) {
    require(r.size() == p, "MpcController: reference size mismatch");
  }

  if (!condensed_active()) {
    solve_dense(input, result);
    return;
  }

  require(input.x.empty(), "MpcController: state size mismatch");
  if (!condensed_ready_ ||
      condensed_.shape().nonnegative != transport_->nonnegative) {
    solvers::TransportQpShape shape;
    shape.portals = m / p;
    shape.idcs = p;
    shape.prediction = config_.horizons.prediction;
    shape.control = b2;
    shape.nonnegative = transport_->nonnegative;
    solvers::TransportQpCost cost;
    cost.q = config_.weights.q;
    cost.slope = cnd_slope_;
    cost.y0 = plant_.y0;
    cost.r = cnd_r_;
    // Mirror the dense MPC entry point: 1e-6 tolerances (lsq.cpp), and
    // check residuals every iteration — through the structure a check
    // costs O(β2·m), negligible next to the x-update, and it stops the
    // solve at the first admissible iterate instead of up to
    // check_interval-1 iterations later.
    solvers::AdmmOptions admm;
    admm.eps_abs = 1e-6;
    admm.eps_rel = 1e-6;
    admm.check_interval = 1;
    condensed_.configure(shape, cost, admm, config_.factor_cache.get());
    condensed_ready_ = true;
  }

  const Vector& warm =
      warm_start_.size() == m * b2 ? warm_start_ : kEmptyVector;
  const Vector& warm_dual = warm_dual_.size() == condensed_.shape().num_rows()
                                ? warm_dual_
                                : kEmptyVector;
  const solvers::CondensedQpResult& res = condensed_.solve(
      input.u_prev, transport_->demand, transport_->cap_lower,
      transport_->cap_upper, input.references, warm, warm_dual,
      config_.max_solver_iterations);
  result.warm_started = !warm.empty();
  result.used_fallback_backend = false;

  if (res.status != solvers::QpStatus::kOptimal && config_.backend_fallback) {
    // Degradation chain: dense ADMM cold, then the active set, each with
    // its own default iteration budget (an injected cap on the primary
    // must not also cripple the rescue attempts).
    prepare_dense_problem(input);
    auto retried = solve_constrained_lsq(
        lsq_, solvers::LsqSolveOptions{solvers::LsqBackend::kAdmm, 0});
    if (retried.status != solvers::QpStatus::kOptimal) {
      auto active = solve_constrained_lsq(
          lsq_, solvers::LsqSolveOptions{solvers::LsqBackend::kActiveSet, 0});
      if (active.status == solvers::QpStatus::kOptimal) {
        retried = std::move(active);
      }
    }
    if (retried.status == solvers::QpStatus::kOptimal) {
      result.used_fallback_backend = true;
      result.warm_started = false;
      finish_dense(input, result, std::move(retried));
      return;
    }
  }

  result.status = res.status;
  result.objective = res.objective;
  result.solver_iterations = res.iterations;
  result.delta_u.assign(res.delta_u.begin(),
                        res.delta_u.begin() + static_cast<std::ptrdiff_t>(m));
  result.u.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    result.u[k] = input.u_prev[k] + result.delta_u[k];
  }
  result.predicted_y.assign(res.y1.begin(), res.y1.end());
  // An unconverged iterate is a poor warm start for the next period (and
  // under ADMM can anchor the next solve in the same stall), so only an
  // optimal solution is cached.
  if (res.status == solvers::QpStatus::kOptimal) {
    warm_start_.assign(res.delta_u.begin(), res.delta_u.end());
    warm_dual_.assign(res.y.begin(), res.y.end());
  } else {
    warm_start_.clear();
    warm_dual_.clear();
  }
}

void MpcController::prepare_dense_problem(const MpcStep& input) {
  const std::size_t m = plant_.num_inputs();
  const std::size_t p = plant_.num_outputs();
  const std::size_t b1 = config_.horizons.prediction;
  const std::size_t b2 = config_.horizons.control;

  // Θ depends only on the plant and the horizons; the affine constant
  // tracks the live state/input and is rebuilt every period.
  if (theta_dirty_) {
    build_theta_into(plant_, config_.horizons, lsq_.f);
    theta_dirty_ = false;
  }
  build_constant_into(plant_, config_.horizons, input.x, input.u_prev,
                      constant_);

  // Least-squares residual: sqrt(Q)·(theta ΔU + constant - r_stack).
  lsq_.g.assign(p * b1, 0.0);
  lsq_.w.assign(p * b1, 0.0);
  for (std::size_t s = 0; s < b1; ++s) {
    // Shorter reference trajectories are extended by holding the last
    // entry. Indexed without a size()-1 clamp: on an empty vector that
    // expression wraps to SIZE_MAX (the emptiness `require` in step_into
    // is the first line of defense, `back()` the second).
    const Vector& ref = s < input.references.size() ? input.references[s]
                                                    : input.references.back();
    for (std::size_t i = 0; i < p; ++i) {
      lsq_.g[s * p + i] = ref[i] - constant_[s * p + i];
      lsq_.w[s * p + i] = config_.weights.q[i];
    }
  }
  lsq_.r.assign(m * b2, 0.0);
  for (std::size_t t = 0; t < b2; ++t) {
    for (std::size_t j = 0; j < m; ++j) {
      lsq_.r[t * m + j] = config_.weights.r[j];
    }
  }

  const InputConstraints* per_step = &config_.constraints;
  if (transport_.has_value()) {
    if (dense_constraints_dirty_) {
      dense_constraints_ = transport_->materialize();
      dense_constraints_dirty_ = false;
    }
    per_step = &dense_constraints_;
  }
  stack_constraints_into(*per_step, input.u_prev, b2, stacked_);
  lsq_.a_eq = stacked_.a_eq;
  lsq_.b_eq = stacked_.b_eq;
  lsq_.a_in = stacked_.a_in;
  lsq_.lower = stacked_.lower;
  lsq_.upper = stacked_.upper;
}

void MpcController::solve_dense(const MpcStep& input, MpcResult& result) {
  const std::size_t m = plant_.num_inputs();
  const std::size_t b2 = config_.horizons.control;
  prepare_dense_problem(input);

  const Vector& warm =
      warm_start_.size() == m * b2 ? warm_start_ : kEmptyVector;
  solvers::LsqSolveOptions solve_options{config_.backend,
                                         config_.max_solver_iterations};
  auto solved = solve_constrained_lsq(lsq_, solve_options, warm);

  result.warm_started = !warm.empty();
  result.used_fallback_backend = false;
  if (solved.status != solvers::QpStatus::kOptimal &&
      config_.backend_fallback) {
    // Degradation tier 1: same problem, other backend, cold start, its
    // own default iteration budget. The two dense solvers fail for
    // different reasons (ADMM stalls on ill-conditioning where the
    // active set pivots through; the active set needs a phase-1 point
    // ADMM does not), so the retry rescues most transient failures.
    // kCondensed degrades to ADMM through this entry, so its retry is
    // the active set too.
    const solvers::LsqBackend other =
        config_.backend == solvers::LsqBackend::kActiveSet
            ? solvers::LsqBackend::kAdmm
            : solvers::LsqBackend::kActiveSet;
    auto retried =
        solve_constrained_lsq(lsq_, solvers::LsqSolveOptions{other, 0});
    if (retried.status == solvers::QpStatus::kOptimal) {
      solved = std::move(retried);
      result.used_fallback_backend = true;
      result.warm_started = false;
    }
  }
  finish_dense(input, result, std::move(solved));
}

void MpcController::finish_dense(const MpcStep& input, MpcResult& result,
                                 solvers::ConstrainedLsqResult&& solved) {
  const std::size_t m = plant_.num_inputs();
  const std::size_t p = plant_.num_outputs();
  result.status = solved.status;
  result.objective = solved.objective;
  result.solver_iterations = solved.iterations;
  result.delta_u.assign(solved.x.begin(),
                        solved.x.begin() + static_cast<std::ptrdiff_t>(m));
  result.u.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    result.u[k] = input.u_prev[k] + result.delta_u[k];
  }
  // First predicted output under the solved move sequence.
  linalg::multiply_into(lsq_.f, solved.x, y_stack_);
  result.predicted_y.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    result.predicted_y[i] = y_stack_[i] + constant_[i];
  }
  // Only an optimal solution is cached as the next warm start; the
  // condensed dual never survives a dense solve.
  if (solved.status == solvers::QpStatus::kOptimal) {
    warm_start_ = std::move(solved.x);
  } else {
    warm_start_.clear();
  }
  warm_dual_.clear();
}

}  // namespace gridctl::control
