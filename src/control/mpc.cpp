#include "control/mpc.hpp"

#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;
using linalg::Vector;

MpcController::MpcController(MpcPlant plant, MpcConfig config)
    : plant_(std::move(plant)), config_(std::move(config)) {
  plant_.validate();
  config_.horizons.validate();
  require(config_.weights.q.size() == plant_.num_outputs(),
          "MpcController: Q weight size mismatch");
  require(config_.weights.r.size() == plant_.num_inputs(),
          "MpcController: R weight size mismatch");
  config_.constraints.validate(plant_.num_inputs());
}

void MpcController::restore_warm_start(linalg::Vector warm_start) {
  require(warm_start.empty() ||
              warm_start.size() ==
                  plant_.num_inputs() * config_.horizons.control,
          "MpcController: restored warm start has the wrong length");
  warm_start_ = std::move(warm_start);
}

void MpcController::set_constraints(InputConstraints constraints) {
  constraints.validate(plant_.num_inputs());
  config_.constraints = std::move(constraints);
}

MpcResult MpcController::step(const MpcStep& input) {
  const std::size_t m = plant_.num_inputs();
  const std::size_t p = plant_.num_outputs();
  const std::size_t b1 = config_.horizons.prediction;
  const std::size_t b2 = config_.horizons.control;
  require(input.u_prev.size() == m, "MpcController: u_prev size mismatch");
  require(!input.references.empty(), "MpcController: no references");
  for (const auto& r : input.references) {
    require(r.size() == p, "MpcController: reference size mismatch");
  }

  const StackedPrediction prediction =
      build_prediction(plant_, config_.horizons, input.x, input.u_prev);

  // Least-squares residual: sqrt(Q)·(theta ΔU + constant - r_stack).
  solvers::ConstrainedLsqProblem lsq;
  lsq.f = prediction.theta;
  lsq.g.assign(p * b1, 0.0);
  lsq.w.assign(p * b1, 0.0);
  for (std::size_t s = 0; s < b1; ++s) {
    // Shorter reference trajectories are extended by holding the last
    // entry. Indexed without a size()-1 clamp: on an empty vector that
    // expression wraps to SIZE_MAX (the emptiness `require` above is the
    // first line of defense, `back()` the second).
    const Vector& ref = s < input.references.size() ? input.references[s]
                                                    : input.references.back();
    for (std::size_t i = 0; i < p; ++i) {
      lsq.g[s * p + i] = ref[i] - prediction.constant[s * p + i];
      lsq.w[s * p + i] = config_.weights.q[i];
    }
  }
  lsq.r.assign(m * b2, 0.0);
  for (std::size_t t = 0; t < b2; ++t) {
    for (std::size_t j = 0; j < m; ++j) {
      lsq.r[t * m + j] = config_.weights.r[j];
    }
  }

  const StackedConstraints stacked =
      stack_constraints(config_.constraints, input.u_prev, b2);
  lsq.a_eq = stacked.a_eq;
  lsq.b_eq = stacked.b_eq;
  lsq.a_in = stacked.a_in;
  lsq.lower = stacked.lower;
  lsq.upper = stacked.upper;

  const Vector warm = warm_start_.size() == m * b2 ? warm_start_ : Vector{};
  solvers::LsqSolveOptions solve_options{config_.backend,
                                         config_.max_solver_iterations};
  auto solved = solve_constrained_lsq(lsq, solve_options, warm);

  MpcResult result;
  result.warm_started = !warm.empty();
  if (solved.status != solvers::QpStatus::kOptimal &&
      config_.backend_fallback) {
    // Degradation tier 1: same problem, other backend, cold start, its
    // own default iteration budget (an injected cap on the primary must
    // not also cripple the rescue attempt).
    const solvers::LsqBackend other =
        config_.backend == solvers::LsqBackend::kAdmm
            ? solvers::LsqBackend::kActiveSet
            : solvers::LsqBackend::kAdmm;
    auto retried = solve_constrained_lsq(lsq, solvers::LsqSolveOptions{other, 0});
    if (retried.status == solvers::QpStatus::kOptimal) {
      solved = std::move(retried);
      result.used_fallback_backend = true;
      result.warm_started = false;
    }
  }
  result.status = solved.status;
  result.objective = solved.objective;
  result.solver_iterations = solved.iterations;
  result.delta_u.assign(solved.x.begin(),
                        solved.x.begin() + static_cast<std::ptrdiff_t>(m));
  result.u = linalg::add(input.u_prev, result.delta_u);
  // First predicted output under the solved move sequence.
  const Vector y_stack = linalg::add(prediction.theta * solved.x,
                                     prediction.constant);
  result.predicted_y.assign(y_stack.begin(),
                            y_stack.begin() + static_cast<std::ptrdiff_t>(p));
  // An unconverged iterate is a poor warm start for the next period (and
  // under ADMM can anchor the next solve in the same stall), so only an
  // optimal solution is cached.
  if (solved.status == solvers::QpStatus::kOptimal) {
    warm_start_ = solved.x;
  } else {
    warm_start_.clear();
  }
  return result;
}

}  // namespace gridctl::control
