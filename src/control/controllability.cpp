#include "control/controllability.hpp"

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;

Matrix controllability_matrix(const Matrix& a, const Matrix& b) {
  require(a.square(), "controllability_matrix: A must be square");
  require(a.rows() == b.rows(), "controllability_matrix: A/B mismatch");
  const std::size_t n = a.rows();
  Matrix result(n, n * b.cols());
  Matrix power_b = b;  // A^k B
  for (std::size_t k = 0; k < n; ++k) {
    result.set_block(0, k * b.cols(), power_b);
    if (k + 1 < n) power_b = a * power_b;
  }
  return result;
}

bool is_controllable(const Matrix& a, const Matrix& b, double tol) {
  return linalg::rank(controllability_matrix(a, b), tol) == a.rows();
}

bool sleep_controllable(const std::vector<datacenter::IdcConfig>& idcs,
                        const std::vector<double>& portal_demands) {
  double capacity = 0.0;
  for (const auto& idc : idcs) capacity += idc.max_capacity().value();
  double demand = 0.0;
  for (double load : portal_demands) {
    require(load >= 0.0, "sleep_controllable: negative demand");
    demand += load;
  }
  return demand <= capacity;
}

}  // namespace gridctl::control
