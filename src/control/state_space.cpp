#include "control/state_space.hpp"

#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;

StateSpace build_paper_model(const std::vector<double>& prices,
                             const std::vector<double>& b1,
                             const std::vector<double>& b0,
                             std::size_t portals) {
  const std::size_t n = prices.size();
  require(n > 0, "build_paper_model: need at least one IDC");
  require(b1.size() == n && b0.size() == n,
          "build_paper_model: coefficient size mismatch");
  require(portals > 0, "build_paper_model: need at least one portal");

  StateSpace ss;
  // A: first row [0, Pr_1 … Pr_N], zero elsewhere — cost integrates the
  // price-weighted energy rates.
  ss.a = Matrix(n + 1, n + 1);
  for (std::size_t j = 0; j < n; ++j) ss.a(0, j + 1) = prices[j];

  // B: row j+1 has b1_j over the C inputs that feed IDC j. Portal-major
  // input layout: u[i*N + j] = lambda_ij.
  ss.b = Matrix(n + 1, n * portals);
  for (std::size_t i = 0; i < portals; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ss.b(j + 1, i * n + j) = b1[j];
    }
  }

  // F: row j+1, column j carries b0_j (idle power of ON servers).
  ss.f = Matrix(n + 1, n);
  for (std::size_t j = 0; j < n; ++j) ss.f(j + 1, j) = b0[j];

  // W selects the cost state.
  ss.w = Matrix(1, n + 1);
  ss.w(0, 0) = 1.0;
  return ss;
}

}  // namespace gridctl::control
