#include "control/prediction.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;
using linalg::Vector;

void MpcPlant::validate() const {
  const std::size_t n = phi.rows();
  const std::size_t m = c_u.cols();
  const std::size_t p = c_u.rows();
  require(phi.cols() == n, "MpcPlant: Phi must be square");
  require(p > 0 && m > 0, "MpcPlant: need outputs and inputs");
  if (n > 0) {
    require(g.rows() == n && g.cols() == m, "MpcPlant: G must be n x m");
    require(w.size() == n, "MpcPlant: w must have n entries");
    require(c_x.rows() == p && c_x.cols() == n, "MpcPlant: C_x must be p x n");
  } else {
    require(g.empty() && w.empty() && c_x.empty(),
            "MpcPlant: stateless plant must have empty Phi/G/w/C_x");
  }
  require(y0.size() == p, "MpcPlant: y0 must have p entries");
}

void MpcHorizons::validate() const {
  require(control >= 1, "MpcHorizons: control horizon must be >= 1");
  require(prediction >= control,
          "MpcHorizons: prediction horizon must be >= control horizon");
}

Matrix cumulative_selector(std::size_t num_inputs,
                           std::size_t control_horizon) {
  Matrix sel(num_inputs * control_horizon, num_inputs * control_horizon);
  for (std::size_t t = 0; t < control_horizon; ++t) {
    for (std::size_t tau = 0; tau <= t; ++tau) {
      for (std::size_t i = 0; i < num_inputs; ++i) {
        sel(t * num_inputs + i, tau * num_inputs + i) = 1.0;
      }
    }
  }
  return sel;
}

void build_theta_into(const MpcPlant& plant, const MpcHorizons& horizons,
                      Matrix& theta) {
  plant.validate();
  horizons.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_inputs();
  const std::size_t p = plant.num_outputs();
  const std::size_t b1 = horizons.prediction;
  const std::size_t b2 = horizons.control;

  theta.resize(p * b1, m * b2);

  // Move sensitivities: x_move_s[tau] = dX_s / dΔU_tau. Independent of
  // the current state and previous input, which is what makes theta
  // cacheable across control periods.
  std::vector<Matrix> x_move(b2, Matrix(n, m));
  for (std::size_t s = 1; s <= b1; ++s) {
    const std::size_t t = std::min(s - 1, b2 - 1);
    if (n > 0) {
      std::vector<Matrix> next_move(b2, Matrix(n, m));
      for (std::size_t tau = 0; tau < b2; ++tau) {
        next_move[tau] = plant.phi * x_move[tau];
        if (tau <= t) next_move[tau] += plant.g;
      }
      x_move = std::move(next_move);
    }
    for (std::size_t tau = 0; tau < b2; ++tau) {
      Matrix block(p, m);
      if (n > 0) block = plant.c_x * x_move[tau];
      if (tau <= t) block += plant.c_u;
      theta.set_block((s - 1) * p, tau * m, block);
    }
  }
}

void build_constant_into(const MpcPlant& plant, const MpcHorizons& horizons,
                         const Vector& x, const Vector& u_prev,
                         Vector& constant) {
  plant.validate();
  horizons.validate();
  const std::size_t n = plant.num_states();
  const std::size_t m = plant.num_inputs();
  const std::size_t p = plant.num_outputs();
  const std::size_t b1 = horizons.prediction;
  require(x.size() == n, "build_prediction: state size mismatch");
  require(u_prev.size() == m, "build_prediction: input size mismatch");

  constant.assign(p * b1, 0.0);

  // Affine part of the recursion X_{k+s} = Phi X_{k+s-1} + G U + w with
  // all moves zero: x_const_s = Phi^s x + sum Phi^t w +
  // (sum Phi^{s-1-t} G) u_prev.
  Vector x_const(n, 0.0);
  if (n > 0) x_const = x;
  const Vector gu = n > 0 ? plant.g * u_prev : Vector{};
  const Vector cu = plant.c_u * u_prev;

  for (std::size_t s = 1; s <= b1; ++s) {
    if (n > 0) {
      Vector next_const = plant.phi * x_const;
      for (std::size_t i = 0; i < n; ++i) {
        next_const[i] += gu[i] + plant.w[i];
      }
      x_const = std::move(next_const);
    }
    // Output row block s-1: Y_s = C_x X_s + C_u U_t + y0.
    Vector y_const = plant.y0;
    if (n > 0) {
      const Vector cx = plant.c_x * x_const;
      for (std::size_t i = 0; i < p; ++i) y_const[i] += cx[i];
    }
    for (std::size_t i = 0; i < p; ++i) y_const[i] += cu[i];
    for (std::size_t i = 0; i < p; ++i) {
      constant[(s - 1) * p + i] = y_const[i];
    }
  }
}

StackedPrediction build_prediction(const MpcPlant& plant,
                                   const MpcHorizons& horizons,
                                   const Vector& x, const Vector& u_prev) {
  StackedPrediction out;
  build_theta_into(plant, horizons, out.theta);
  build_constant_into(plant, horizons, x, u_prev, out.constant);
  return out;
}

}  // namespace gridctl::control
