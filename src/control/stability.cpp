#include "control/stability.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridctl::control {

using linalg::Vector;

ContractionEstimate estimate_contraction(const MpcPlant& plant,
                                         const MpcConfig& config,
                                         const MpcStep& step_a,
                                         const MpcStep& step_b) {
  require(step_a.u_prev.size() == step_b.u_prev.size(),
          "estimate_contraction: input size mismatch");
  const double separation =
      linalg::norm_inf(linalg::sub(step_a.u_prev, step_b.u_prev));
  require(separation > 0.0,
          "estimate_contraction: start points must differ");
  // Fresh controllers so warm starts cannot couple the evaluations.
  MpcController controller_a(plant, config);
  MpcController controller_b(plant, config);
  const Vector u_a = controller_a.step(step_a).u;
  const Vector u_b = controller_b.step(step_b).u;
  ContractionEstimate estimate;
  estimate.ratio = linalg::norm_inf(linalg::sub(u_a, u_b)) / separation;
  estimate.contraction = estimate.ratio < 1.0;
  return estimate;
}

ConvergenceReport verify_convergence(const MpcPlant& plant,
                                     const MpcConfig& config,
                                     const Vector& x, const Vector& u0,
                                     const std::vector<Vector>& refs,
                                     std::size_t max_steps, double tol) {
  MpcController controller(plant, config);
  ConvergenceReport report;
  Vector u = u0;

  // Find the fixed point first by iterating to convergence, then replay
  // from u0 measuring the per-step distance ratio to it.
  Vector u_star = u0;
  for (std::size_t k = 0; k < max_steps; ++k) {
    MpcStep step{x, u_star, refs};
    const Vector next = controller.step(step).u;
    if (linalg::norm_inf(linalg::sub(next, u_star)) < tol) {
      u_star = next;
      break;
    }
    u_star = next;
  }

  MpcController replay(plant, config);
  double prev_dist = linalg::norm_inf(linalg::sub(u, u_star));
  for (std::size_t k = 0; k < max_steps; ++k) {
    MpcStep step{x, u, refs};
    const Vector next = replay.step(step).u;
    const double dist = linalg::norm_inf(linalg::sub(next, u_star));
    if (prev_dist > tol) {
      report.worst_step_ratio =
          std::max(report.worst_step_ratio, dist / prev_dist);
    }
    const double moved = linalg::norm_inf(linalg::sub(next, u));
    u = next;
    prev_dist = dist;
    if (moved < tol) {
      report.converged = true;
      report.steps_to_converge = k + 1;
      break;
    }
  }
  return report;
}

}  // namespace gridctl::control
