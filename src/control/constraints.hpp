// Stacking of the per-step input constraints into the move space — the
// paper's eq. (43)–(45):
//
//   H U_t  = h            (workload conservation, eq. 26)
//   Ψ U_t <= φ            (latency/capacity, eq. 31)
//   U_t   >= 0            (eq. 34)
//
// for every control step t = 0..β2-1, rewritten over the stacked move
// vector dU via U_t = U_{k-1} + Σ_{τ<=t} ΔU_τ.
#pragma once

#include "linalg/matrix.hpp"

namespace gridctl::control {

// Per-step constraint description in U space.
struct InputConstraints {
  linalg::Matrix h_eq;      // rows x m (may be empty)
  linalg::Vector h_rhs;
  linalg::Matrix a_in;      // rows x m (may be empty)
  linalg::Vector in_lower;  // entries may be -inf
  linalg::Vector in_upper;  // entries may be +inf
  bool nonnegative = true;  // U >= 0

  void validate(std::size_t num_inputs) const;
};

// Constraints over the stacked move vector (m * β2 variables).
struct StackedConstraints {
  linalg::Matrix a_eq;
  linalg::Vector b_eq;
  linalg::Matrix a_in;
  linalg::Vector lower;
  linalg::Vector upper;
};

StackedConstraints stack_constraints(const InputConstraints& per_step,
                                     const linalg::Vector& u_prev,
                                     std::size_t control_horizon);

// Arena variant: writes into `out`, reusing its storage when the shapes
// already match (the per-tick hot path re-stacks with a new u_prev but
// an unchanged shape, so after the first call this allocates nothing).
void stack_constraints_into(const InputConstraints& per_step,
                            const linalg::Vector& u_prev,
                            std::size_t control_horizon,
                            StackedConstraints& out);

// The CostController constraint set in structured form: conservation
// (Σ_j u[i,j] = demand_i per portal), per-IDC load caps
// (cap_lower_j <= Σ_i u[i,j] <= cap_upper_j) and non-negativity. This
// is the exact pattern conservation_matrix / idc_load_matrix produce,
// carried as O(C + N) vectors instead of O(C·N²) dense rows so the
// condensed solver can exploit it and the dense path can materialize it
// lazily.
struct TransportConstraints {
  linalg::Vector demand;     // C, conservation right-hand side
  linalg::Vector cap_lower;  // N, entries may be -inf
  linalg::Vector cap_upper;  // N, entries may be +inf
  bool nonnegative = true;

  std::size_t portals() const { return demand.size(); }
  std::size_t idcs() const { return cap_lower.size(); }
  void validate() const;
  // Equivalent dense per-step form (for the generic QP backends).
  InputConstraints materialize() const;
};

// Workload-conservation block (paper eq. 26–29): portal-major U layout,
// H (C x NC) with H(i, i*N + j) = 1 for all j; h = L.
linalg::Matrix conservation_matrix(std::size_t portals, std::size_t idcs);

// Per-IDC load-sum rows (paper eq. 32): Ψ (N x NC) with Ψ(j, i*N+j) = 1.
linalg::Matrix idc_load_matrix(std::size_t portals, std::size_t idcs);

}  // namespace gridctl::control
