// Stacked MPC prediction matrices — the paper's Θ, Ξ, W′, Ω̄ machinery
// (eq. 39–41), generalized to any discrete LTI plant with an affine
// per-step disturbance and direct feedthrough:
//
//   X(k+1) = Phi X(k) + G U(k) + w
//   Y(k)   = C_x X(k) + C_u U(k-? ) + y0     (see below)
//
// The tracked output at prediction step s (s = 1..β1) is
//   Y_s = C_x X_{k+s} + C_u U_{k + min(s-1, β2-1)} + y0
// i.e. the feedthrough sees the input applied over the interval ending
// at k+s, so the first predicted output already responds to the first
// control move — the convention that makes power tracking well-posed.
//
// Inputs are parameterized by moves: U_t = U_{k-1} + Σ_{τ<=t} ΔU_τ for
// t < β2, held at U_{k+β2-1} afterwards. `build_prediction` returns the
// affine map from the stacked move vector to the stacked outputs.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace gridctl::control {

// Generic plant the MPC controls. The state block may be empty
// (num_states() == 0) for purely memoryless tracked outputs such as
// per-IDC power.
struct MpcPlant {
  linalg::Matrix phi;     // n x n
  linalg::Matrix g;       // n x m
  linalg::Vector w;       // n, constant per-step disturbance (e.g. Γ V)
  linalg::Matrix c_x;     // p x n
  linalg::Matrix c_u;     // p x m
  linalg::Vector y0;      // p

  std::size_t num_states() const { return phi.rows(); }
  std::size_t num_inputs() const { return c_u.cols(); }
  std::size_t num_outputs() const { return c_u.rows(); }

  void validate() const;
};

struct MpcHorizons {
  std::size_t prediction = 8;  // β1
  std::size_t control = 2;     // β2 (1 <= β2 <= β1)

  void validate() const;
};

// Y_stack = theta * dU_stack + constant, where
//   Y_stack  = [Y_1; …; Y_β1]              (p β1)
//   dU_stack = [ΔU_0; …; ΔU_{β2-1}]        (m β2)
struct StackedPrediction {
  linalg::Matrix theta;
  linalg::Vector constant;
};

StackedPrediction build_prediction(const MpcPlant& plant,
                                   const MpcHorizons& horizons,
                                   const linalg::Vector& x,
                                   const linalg::Vector& u_prev);

// Split form for per-tick reuse: theta depends only on the plant and
// the horizons (never on the current state or input), so controllers
// cache it across control periods and rebuild only the affine constant.
// Both write into their output arguments, reusing existing storage when
// the shape is unchanged.
void build_theta_into(const MpcPlant& plant, const MpcHorizons& horizons,
                      linalg::Matrix& theta);
void build_constant_into(const MpcPlant& plant, const MpcHorizons& horizons,
                         const linalg::Vector& x, const linalg::Vector& u_prev,
                         linalg::Vector& constant);

// The block-lower-triangular cumulative selector Ī (paper eq. 43–45):
// row-block t maps dU_stack to U_t - U_{k-1} = Σ_{τ<=t} ΔU_τ.
linalg::Matrix cumulative_selector(std::size_t num_inputs,
                                   std::size_t control_horizon);

}  // namespace gridctl::control
