#include "control/discretize.hpp"

#include "linalg/expm.hpp"
#include "util/error.hpp"

namespace gridctl::control {

DiscreteModel discretize(const StateSpace& ss, double sampling_period_s) {
  require(sampling_period_s > 0.0, "discretize: Ts must be positive");
  // One augmented exponential handles both input matrices: stack [B F].
  const linalg::Matrix bf = linalg::hstack(ss.b, ss.f);
  const auto zoh = linalg::zoh_discretize(ss.a, bf, sampling_period_s);
  DiscreteModel d;
  d.phi = zoh.phi;
  d.g = zoh.gamma.block(0, 0, ss.num_states(), ss.num_inputs());
  d.gamma = zoh.gamma.block(0, ss.num_inputs(), ss.num_states(), ss.num_idcs());
  d.w = ss.w;
  d.ts = sampling_period_s;
  return d;
}

}  // namespace gridctl::control
