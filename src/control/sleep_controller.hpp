// Slow-loop server sleep (ON/OFF) control — the paper's eq. (35):
//
//   m_j = ceil( lambda_j / mu_j + 1 / (mu_j D_j) )
//
// the fewest servers that hold the simplified M/M/n latency under D_j.
// An optional ramp limit bounds |m_j(k) - m_j(k-1)| per invocation,
// modelling the physical reality that thousands of servers cannot be
// powered on instantaneously (the ablation benches quantify its effect).
#pragma once

#include <cstddef>
#include <vector>

#include "datacenter/idc.hpp"

namespace gridctl::control {

struct SleepControllerOptions {
  // Max servers switched per IDC per invocation; 0 disables ramping.
  std::size_t max_ramp_per_step = 0;
  // When true, provision with the exact M/M/n mean response time
  // (Erlang-C) instead of the paper's P_Q = 1 simplification. The exact
  // model queues less pessimistically, so it turns on fewer servers for
  // the same bound — the ablation quantifies the saving.
  bool exact_mmn = false;
};

class SleepController {
 public:
  SleepController(std::vector<datacenter::IdcConfig> idcs,
                  SleepControllerOptions options = {});

  // Target ON count for one IDC at load `lambda` (eq. 35, capped at M_j).
  std::size_t target_servers(std::size_t idc, double lambda_rps) const;

  // Full slow-loop step: desired counts for all IDCs given loads,
  // ramp-limited against `previous` when ramping is enabled.
  std::vector<std::size_t> step(const std::vector<double>& idc_loads,
                                const std::vector<std::size_t>& previous) const;

  std::size_t num_idcs() const { return idcs_.size(); }

 private:
  std::vector<datacenter::IdcConfig> idcs_;
  SleepControllerOptions options_;
};

}  // namespace gridctl::control
