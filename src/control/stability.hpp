// Empirical closed-loop stability evidence (paper Sec. IV-E).
//
// The paper appeals to Mayne et al. 2000: a constrained MPC closed loop
// is stable when the underlying iteration is a contraction. For the
// workload-allocation loop the relevant map takes the previous input
// U(k-1) to the applied input U(k) at fixed references and constraints;
// `estimate_contraction` measures the Lipschitz ratio of that map along
// the segment between two start points, and `verify_convergence` runs
// the loop and reports geometric approach to the reference fixed point.
#pragma once

#include "control/mpc.hpp"

namespace gridctl::control {

struct ContractionEstimate {
  // ||F(u_a) - F(u_b)|| / ||u_a - u_b|| in the infinity norm; < 1 means
  // the two trajectories approach each other after one step.
  double ratio = 0.0;
  bool contraction = false;
};

// One-step Lipschitz ratio of the MPC input map between two previous
// inputs (both must satisfy the per-step constraints). `references` and
// `x` as in MpcStep; the controller's warm start is bypassed so the two
// evaluations are independent.
ContractionEstimate estimate_contraction(const MpcPlant& plant,
                                         const MpcConfig& config,
                                         const MpcStep& step_a,
                                         const MpcStep& step_b);

struct ConvergenceReport {
  bool converged = false;
  std::size_t steps_to_converge = 0;
  // max over consecutive steps of ||u(k+1) - u*|| / ||u(k) - u*||.
  double worst_step_ratio = 0.0;
};

// Iterate the closed loop from `u0` under constant references until the
// input settles (||du|| < tol) or `max_steps` elapse.
ConvergenceReport verify_convergence(const MpcPlant& plant,
                                     const MpcConfig& config,
                                     const linalg::Vector& x,
                                     const linalg::Vector& u0,
                                     const std::vector<linalg::Vector>& refs,
                                     std::size_t max_steps = 200,
                                     double tol = 1e-6);

}  // namespace gridctl::control
