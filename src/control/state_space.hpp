// The paper's continuous-time electricity-cost state-space model
// (Sec. IV-A, eq. 19–20).
//
// State   X = [C̄, E_1, …, E_N]ᵀ  (total cost, per-IDC energy rates*)
// Input   U = [lambda_ij]        (portal-major, length N·C)
// Known   V = [m_1, …, m_N]ᵀ     (servers ON, slow loop)
// Output  Y = W X = C̄
//
//   Ẋ = A X + B U + F V,   Y = W X
//
// with A's first row carrying the regional prices Pr_j, B mapping
// workload to energy rates through b1, and F mapping ON servers through
// b0. (*The paper writes E_j(t) for the energy-rate integrators driven
// by power; the first row integrates price x energy into cost.)
//
// The builder reproduces those matrices verbatim so the discretization,
// controllability and MPC-prediction machinery can be tested against the
// paper's structure.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace gridctl::control {

struct StateSpace {
  linalg::Matrix a;  // (N+1) x (N+1)
  linalg::Matrix b;  // (N+1) x (N C)
  linalg::Matrix f;  // (N+1) x N
  linalg::Matrix w;  // 1 x (N+1)

  std::size_t num_idcs() const { return f.cols(); }
  std::size_t num_states() const { return a.rows(); }
  std::size_t num_inputs() const { return b.cols(); }
};

// Build the paper's matrices for N IDCs and C portals.
// `prices[j]` is Pr_j; `b1[j]`, `b0[j]` the power-model coefficients of
// IDC j (the paper assumes identical servers; we allow per-IDC values).
StateSpace build_paper_model(const std::vector<double>& prices,
                             const std::vector<double>& b1,
                             const std::vector<double>& b0,
                             std::size_t portals);

}  // namespace gridctl::control
