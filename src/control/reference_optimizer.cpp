#include "control/reference_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "datacenter/latency.hpp"
#include "solvers/lp_simplex.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace gridctl::control {

using datacenter::Allocation;
using datacenter::IdcConfig;
using linalg::Matrix;
using linalg::Vector;

double load_cap_for_capacity(const IdcConfig& idc) {
  return datacenter::capacity_for_latency(
             idc.max_servers, idc.power.service_rate, idc.latency_bound_s)
      .value();
}

double load_cap_for_budget(const IdcConfig& idc, double budget_w) {
  if (!std::isfinite(budget_w)) return load_cap_for_capacity(idc);
  const double mu = idc.power.service_rate.value();
  const double b0 = idc.power.idle_w.value();
  const double b1 = idc.power.watts_per_rps();
  // With m = lambda/mu + 1/(mu D) (continuous eq. 35):
  //   P = b1 lambda + b0 m = (b1 + b0/mu) lambda + b0 / (mu D)
  const double fixed = b0 / (mu * idc.latency_bound_s.value());
  const double slope = b1 + b0 / mu;
  const double cap = (budget_w - fixed) / slope;
  return std::clamp(cap, 0.0, load_cap_for_capacity(idc));
}

namespace {

// Above this variable count, the transportation LP is solved by the
// closed-form greedy below instead of the simplex (whose dense tableau
// is (c + n) × (n·c) — gigabytes at fleet scale). Small problems keep
// the simplex so its vertex solutions — which published trajectories
// pin — are unchanged.
constexpr std::size_t kGreedyGateVars = 4096;

double unit_cost(const ReferenceProblem& problem, std::size_t j) {
  const auto& idc = problem.idcs[j];
  const double per_rps =
      problem.basis == CostBasis::kPowerIntegral
          ? idc.power.watts_per_rps() +
                idc.power.idle_w.value() / idc.power.service_rate.value()
          : 1.0;
  return problem.prices[j] * per_rps;
}

// The LP's cost on lambda_ij depends only on the IDC column j, so the
// optimal per-IDC loads are the greedy fill of the cheapest IDCs up to
// their caps, and the product-form split
// lambda_ij = L_i · load_j / L_total meets both marginals exactly
// (row sums L_i, column sums load_j). O(n·c) instead of a simplex run.
solvers::LpResult solve_allocation_greedy(const ReferenceProblem& problem,
                                          const std::vector<double>& caps) {
  const std::size_t n = problem.idcs.size();
  const std::size_t c = problem.portal_demands.size();
  solvers::LpResult result;
  result.x.assign(n * c, 0.0);

  double total = 0.0;
  for (double demand : problem.portal_demands) total += demand;
  if (total <= 0.0) {
    result.status = solvers::LpStatus::kOptimal;
    return result;
  }

  std::vector<std::size_t> order(n);
  for (std::size_t j = 0; j < n; ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return unit_cost(problem, a) < unit_cost(problem, b);
                   });
  std::vector<double> loads(n, 0.0);
  double remaining = total;
  double objective = 0.0;
  for (const std::size_t j : order) {
    const double take = std::min(caps[j], remaining);
    if (take <= 0.0) continue;
    loads[j] = take;
    objective += unit_cost(problem, j) * take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
  if (remaining > 1e-9 * std::max(1.0, total)) {
    result.status = solvers::LpStatus::kInfeasible;
    return result;
  }
  for (std::size_t i = 0; i < c; ++i) {
    const double share = problem.portal_demands[i] / total;
    for (std::size_t j = 0; j < n; ++j) {
      result.x[i * n + j] = share * loads[j];
    }
  }
  result.status = solvers::LpStatus::kOptimal;
  result.objective = objective;
  return result;
}

// Demand-charge variant of the greedy: each IDC contributes two fill
// segments — load that fits under the running billing-cycle peak at the
// plain unit cost, and load above it at the shadow-uplifted cost
// (prices[j] + peak_shadow_per_mwh). The per-IDC cost is piecewise-
// linear convex in the load, so greedily filling the 2n segments in
// cost order is exact, and the product-form split applies unchanged.
solvers::LpResult solve_allocation_peaked(const ReferenceProblem& problem,
                                          const std::vector<double>& caps) {
  const std::size_t n = problem.idcs.size();
  const std::size_t c = problem.portal_demands.size();
  solvers::LpResult result;
  result.x.assign(n * c, 0.0);

  double total = 0.0;
  for (double demand : problem.portal_demands) total += demand;
  if (total <= 0.0) {
    result.status = solvers::LpStatus::kOptimal;
    return result;
  }

  struct Segment {
    std::size_t idc;
    double cap;
    double cost;
  };
  std::vector<Segment> segments;
  segments.reserve(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    const double peak =
        problem.cycle_peak_w.empty() ? 0.0 : problem.cycle_peak_w[j];
    const double below =
        std::min(caps[j], load_cap_for_budget(problem.idcs[j], peak));
    const double base_cost = unit_cost(problem, j);
    // The uplift scales with the same per-req/s factor as the price so
    // both cost bases rank the shadow consistently.
    const double uplift =
        problem.prices[j] > 0.0
            ? base_cost / problem.prices[j] * problem.peak_shadow_per_mwh
            : problem.peak_shadow_per_mwh;
    if (below > 0.0) segments.push_back({j, below, base_cost});
    if (caps[j] > below) {
      segments.push_back({j, caps[j] - below, base_cost + uplift});
    }
  }
  std::stable_sort(segments.begin(), segments.end(),
                   [](const Segment& a, const Segment& b) {
                     return a.cost < b.cost;
                   });
  std::vector<double> loads(n, 0.0);
  double remaining = total;
  double objective = 0.0;
  for (const Segment& seg : segments) {
    const double take = std::min(seg.cap, remaining);
    if (take <= 0.0) continue;
    loads[seg.idc] += take;
    objective += seg.cost * take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
  if (remaining > 1e-9 * std::max(1.0, total)) {
    result.status = solvers::LpStatus::kInfeasible;
    return result;
  }
  for (std::size_t i = 0; i < c; ++i) {
    const double share = problem.portal_demands[i] / total;
    for (std::size_t j = 0; j < n; ++j) {
      result.x[i * n + j] = share * loads[j];
    }
  }
  result.status = solvers::LpStatus::kOptimal;
  result.objective = objective;
  return result;
}

// Transportation LP over lambda_ij (portal-major flattening):
//   min sum_ij Pr_j (b1_j + b0_j/mu_j) lambda_ij
//   s.t. sum_j lambda_ij = L_i          (portal conservation)
//        sum_i lambda_ij <= cap_j        (per-IDC load cap)
//        lambda >= 0
solvers::LpResult solve_allocation_lp(const ReferenceProblem& problem,
                                      const std::vector<double>& caps) {
  const std::size_t n = problem.idcs.size();
  const std::size_t c = problem.portal_demands.size();
  if (problem.peak_shadow_per_mwh > 0.0) {
    return solve_allocation_peaked(problem, caps);
  }
  if (n * c >= kGreedyGateVars) return solve_allocation_greedy(problem, caps);
  solvers::LpProblem lp;
  lp.c.assign(n * c, 0.0);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto& idc = problem.idcs[j];
      const double per_rps =
          problem.basis == CostBasis::kPowerIntegral
              ? idc.power.watts_per_rps() +
                    idc.power.idle_w.value() / idc.power.service_rate.value()
              : 1.0;
      lp.c[i * n + j] = problem.prices[j] * per_rps;
    }
  }
  lp.a_eq = Matrix(c, n * c);
  lp.b_eq.assign(c, 0.0);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < n; ++j) lp.a_eq(i, i * n + j) = 1.0;
    lp.b_eq[i] = problem.portal_demands[i];
  }
  lp.a_ub = Matrix(n, n * c);
  lp.b_ub.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < c; ++i) lp.a_ub(j, i * n + j) = 1.0;
    lp.b_ub[j] = caps[j];
  }
  return solvers::solve_lp(lp);
}

}  // namespace

ReferenceSolution solve_reference(const ReferenceProblem& problem) {
  const std::size_t n = problem.idcs.size();
  const std::size_t c = problem.portal_demands.size();
  require(n > 0, "solve_reference: need at least one IDC");
  require(c > 0, "solve_reference: need at least one portal");
  require(problem.prices.size() == n, "solve_reference: price size mismatch");
  require(problem.power_budgets_w.empty() || problem.power_budgets_w.size() == n,
          "solve_reference: budget size mismatch");
  require(problem.cycle_peak_w.empty() || problem.cycle_peak_w.size() == n,
          "solve_reference: cycle peak size mismatch");
  require(problem.peak_shadow_per_mwh >= 0.0,
          "solve_reference: negative peak shadow price");
  for (const auto& idc : problem.idcs) idc.validate();
  for (double demand : problem.portal_demands) {
    require(demand >= 0.0, "solve_reference: negative demand");
  }

  const auto budget = [&](std::size_t j) {
    return problem.power_budgets_w.empty()
               ? std::numeric_limits<double>::infinity()
               : problem.power_budgets_w[j];
  };

  std::vector<double> caps(n);
  for (std::size_t j = 0; j < n; ++j) {
    caps[j] = load_cap_for_budget(problem.idcs[j], budget(j));
  }

  ReferenceSolution solution;
  auto lp_result = solve_allocation_lp(problem, caps);
  if (lp_result.status != solvers::LpStatus::kOptimal) {
    // Budgets too tight for the demand: serve the workload anyway
    // (availability beats the budget) and report the relaxation.
    for (std::size_t j = 0; j < n; ++j) {
      caps[j] = load_cap_for_capacity(problem.idcs[j]);
    }
    lp_result = solve_allocation_lp(problem, caps);
    if (lp_result.status != solvers::LpStatus::kOptimal) {
      solution.feasible = false;  // demand exceeds fleet capacity
      return solution;
    }
    solution.budgets_relaxed = true;
  }

  solution.feasible = true;
  solution.allocation = Allocation::unflatten(lp_result.x, c, n);
  solution.idc_loads = units::raw_vector(solution.allocation.idc_loads());
  solution.servers.resize(n);
  solution.power_w.resize(n);
  solution.reference_power_w.resize(n);
  double cost_rate_w_price = 0.0;  // watts x $/MWh
  for (std::size_t j = 0; j < n; ++j) {
    const auto& idc = problem.idcs[j];
    const std::size_t m = std::min(
        datacenter::servers_for_latency(units::Rps{solution.idc_loads[j]},
                                        idc.power.service_rate,
                                        idc.latency_bound_s),
        idc.max_servers);
    solution.servers[j] = m;
    solution.power_w[j] =
        idc.power.idc_power(units::Rps{solution.idc_loads[j]}, m).value();
    solution.reference_power_w[j] = std::min(solution.power_w[j], budget(j));
    cost_rate_w_price += problem.prices[j] * solution.power_w[j];
  }
  // watts * $/MWh -> $/h: P[W] x 1h = P/1e6 MWh.
  solution.cost_rate_per_hour = cost_rate_w_price / units::kWattsPerMegawatt;
  return solution;
}

GreenReferenceSolution solve_green_reference(
    const GreenReferenceProblem& problem) {
  const std::size_t n = problem.idcs.size();
  const std::size_t c = problem.portal_demands.size();
  require(n > 0 && c > 0, "solve_green_reference: empty problem");
  require(problem.prices.size() == n && problem.renewable_w.size() == n,
          "solve_green_reference: per-IDC vector size mismatch");
  for (const auto& idc : problem.idcs) idc.validate();
  for (double renewable : problem.renewable_w) {
    require(renewable >= 0.0, "solve_green_reference: negative renewables");
  }

  // Variables: [lambda_ij (portal-major, n*c) | g_j (n)].
  const std::size_t num_vars = n * c + n;
  solvers::LpProblem lp;
  lp.c.assign(num_vars, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    require(problem.prices[j] >= 0.0,
            "solve_green_reference: negative prices make the brown-power "
            "epigraph unbounded; use solve_reference for negative LMPs");
    lp.c[n * c + j] = problem.prices[j];
  }

  lp.a_eq = Matrix(c, num_vars);
  lp.b_eq.assign(c, 0.0);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < n; ++j) lp.a_eq(i, i * n + j) = 1.0;
    lp.b_eq[i] = problem.portal_demands[i];
  }

  // Rows: capacity caps (n) + brown-power epigraph (n).
  lp.a_ub = Matrix(2 * n, num_vars);
  lp.b_ub.assign(2 * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& idc = problem.idcs[j];
    for (std::size_t i = 0; i < c; ++i) lp.a_ub(j, i * n + j) = 1.0;
    lp.b_ub[j] = load_cap_for_capacity(idc);

    // slope * lambda_j - g_j <= renewable_j - fixed_j.
    const double slope =
        idc.power.watts_per_rps() +
        idc.power.idle_w.value() / idc.power.service_rate.value();
    const double fixed = idc.power.idle_w.value() /
                         (idc.power.service_rate.value() *
                          idc.latency_bound_s.value());
    for (std::size_t i = 0; i < c; ++i) lp.a_ub(n + j, i * n + j) = slope;
    lp.a_ub(n + j, n * c + j) = -1.0;
    lp.b_ub[n + j] = problem.renewable_w[j] - fixed;
  }

  const auto lp_result = solvers::solve_lp(lp);
  GreenReferenceSolution solution;
  if (lp_result.status != solvers::LpStatus::kOptimal) return solution;

  solution.feasible = true;
  linalg::Vector lambda(lp_result.x.begin(),
                        lp_result.x.begin() +
                            static_cast<std::ptrdiff_t>(n * c));
  solution.allocation = Allocation::unflatten(lambda, c, n);
  solution.idc_loads = units::raw_vector(solution.allocation.idc_loads());
  solution.servers.resize(n);
  solution.power_w.resize(n);
  solution.brown_power_w.resize(n);
  double brown_cost = 0.0, total_power = 0.0, brown_power = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const auto& idc = problem.idcs[j];
    solution.servers[j] = std::min(
        datacenter::servers_for_latency(units::Rps{solution.idc_loads[j]},
                                        idc.power.service_rate,
                                        idc.latency_bound_s),
        idc.max_servers);
    solution.power_w[j] =
        idc.power.idc_power(units::Rps{solution.idc_loads[j]},
                            solution.servers[j])
            .value();
    solution.brown_power_w[j] =
        std::max(0.0, solution.power_w[j] - problem.renewable_w[j]);
    brown_cost += problem.prices[j] * solution.brown_power_w[j];
    total_power += solution.power_w[j];
    brown_power += solution.brown_power_w[j];
  }
  solution.brown_cost_rate_per_hour = brown_cost / units::kWattsPerMegawatt;
  solution.brown_energy_fraction =
      total_power > 0.0 ? brown_power / total_power : 0.0;
  return solution;
}

}  // namespace gridctl::control
