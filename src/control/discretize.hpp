// ZOH discretization of the continuous model (paper eq. 21–25):
//
//   X(k) = Phi X(k-1) + G U(k-1) + Gamma V(k-1)
//
//   Phi   = e^{A Ts}
//   G     = ∫₀^Ts e^{As} ds · B
//   Gamma = ∫₀^Ts e^{As} ds · F
//
// computed exactly through the augmented matrix exponential.
#pragma once

#include "control/state_space.hpp"
#include "linalg/matrix.hpp"

namespace gridctl::control {

struct DiscreteModel {
  linalg::Matrix phi;    // n x n
  linalg::Matrix g;      // n x (N C)
  linalg::Matrix gamma;  // n x N
  linalg::Matrix w;      // output selector, carried over
  double ts = 0.0;
};

DiscreteModel discretize(const StateSpace& ss, double sampling_period_s);

}  // namespace gridctl::control
