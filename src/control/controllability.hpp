// Feasibility checks the paper states before designing the controller
// (Sec. IV-C).
//
// 1. Workload-loop controllability: Kalman rank of [B, AB, …, A^{n-1}B]
//    must equal the state dimension. For the paper's model this holds
//    whenever every Pr_j > 0 and b1 > 0.
// 2. Sleep (ON/OFF) controllability: the arriving workload must fit
//    under the summed per-IDC capacity at full power-on with the latency
//    bound met:  sum_i L_i <= sum_j lambda_bar_j.
#pragma once

#include <vector>

#include "control/state_space.hpp"
#include "datacenter/idc.hpp"

namespace gridctl::control {

// Kalman controllability matrix [B, AB, A²B, …, A^{n-1}B].
linalg::Matrix controllability_matrix(const linalg::Matrix& a,
                                      const linalg::Matrix& b);

bool is_controllable(const linalg::Matrix& a, const linalg::Matrix& b,
                     double tol = 1e-9);

// Sleep controllability: can the fleet absorb `portal_demands` at full
// power-on within each IDC's latency bound?
bool sleep_controllable(const std::vector<datacenter::IdcConfig>& idcs,
                        const std::vector<double>& portal_demands);

}  // namespace gridctl::control
