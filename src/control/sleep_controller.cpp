#include "control/sleep_controller.hpp"

#include <algorithm>

#include "datacenter/latency.hpp"
#include "util/error.hpp"

namespace gridctl::control {

SleepController::SleepController(std::vector<datacenter::IdcConfig> idcs,
                                 SleepControllerOptions options)
    : idcs_(std::move(idcs)), options_(options) {
  require(!idcs_.empty(), "SleepController: need at least one IDC");
  for (const auto& idc : idcs_) idc.validate();
}

std::size_t SleepController::target_servers(std::size_t idc,
                                            double lambda_rps) const {
  require(idc < idcs_.size(), "SleepController: IDC index out of range");
  require(lambda_rps >= 0.0, "SleepController: negative load");
  const auto& cfg = idcs_[idc];
  const double mu = cfg.power.service_rate.value();
  const std::size_t simplified = datacenter::servers_for_latency(
      units::Rps{lambda_rps}, cfg.power.service_rate, cfg.latency_bound_s);
  if (!options_.exact_mmn) return std::min(simplified, cfg.max_servers);

  // The paper's D bounds the mean *wait* (eq. 14 with P_Q = 1); the
  // exact M/M/n wait C(n, a)/(n mu - lambda) is strictly smaller, so the
  // eq.-35 count is an upper bracket. Binary-search the smallest stable
  // m whose exact wait meets the bound.
  std::size_t lo = static_cast<std::size_t>(lambda_rps / mu) + 1;  // stability
  std::size_t hi = std::max(simplified, lo);
  const auto exact_wait = [&](std::size_t m) {
    return datacenter::mmn_response_time(m, cfg.power.service_rate,
                                         units::Rps{lambda_rps}) -
           units::Seconds{1.0 / mu};
  };
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (exact_wait(mid) <= cfg.latency_bound_s) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return std::min(hi, cfg.max_servers);
}

std::vector<std::size_t> SleepController::step(
    const std::vector<double>& idc_loads,
    const std::vector<std::size_t>& previous) const {
  require(idc_loads.size() == idcs_.size(),
          "SleepController: load vector size mismatch");
  require(previous.size() == idcs_.size(),
          "SleepController: previous vector size mismatch");
  std::vector<std::size_t> next(idcs_.size());
  for (std::size_t j = 0; j < idcs_.size(); ++j) {
    std::size_t target = target_servers(j, idc_loads[j]);
    if (options_.max_ramp_per_step > 0) {
      const std::size_t prev = previous[j];
      const std::size_t ramp = options_.max_ramp_per_step;
      if (target > prev + ramp) {
        target = prev + ramp;
      } else if (target + ramp < prev) {
        target = prev - ramp;
      }
      target = std::min(target, idcs_[j].max_servers);
    }
    next[j] = target;
  }
  return next;
}

}  // namespace gridctl::control
