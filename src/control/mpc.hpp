// The constrained MPC controller (paper Sec. IV-C, eq. 37 and 42–45).
//
// Each step minimizes
//
//   J = Σ_{s=1..β1} || Y_s − r_s ||²_Q + Σ_{τ=0..β2-1} || ΔU_τ ||²_R
//
// over the stacked input moves, subject to the per-step input
// constraints, by transforming to a constrained least-squares problem
// and solving it with the QP layer. The R term is the power-demand
// smoothing mechanism: it prices every change of the workload
// allocation, so the closed loop ramps instead of jumping. Peak shaving
// happens one level up, in the references fed to `step` (clamped to the
// power budget by the reference optimizer).
#pragma once

#include <optional>

#include "control/constraints.hpp"
#include "control/prediction.hpp"
#include "solvers/lsq.hpp"

namespace gridctl::control {

struct MpcWeights {
  // Per-output tracking weights (replicated across the prediction
  // horizon) and per-input move penalties (replicated across the control
  // horizon). Larger r/q ratio = smoother, slower tracking.
  linalg::Vector q;
  linalg::Vector r;
};

struct MpcConfig {
  MpcHorizons horizons;
  MpcWeights weights;
  InputConstraints constraints;
  solvers::LsqBackend backend = solvers::LsqBackend::kAdmm;
  // QP iteration cap for the primary backend; 0 = backend default. A
  // deliberately tiny cap is the fault-injection lever for exercising
  // the degradation chain.
  std::size_t max_solver_iterations = 0;
  // When the primary backend fails (iteration cap / infeasible), re-solve
  // the same stacked problem cold with the *other* backend at its default
  // iteration budget before giving up. The two solvers fail for different
  // reasons (ADMM stalls on ill-conditioning where the active set pivots
  // through; the active set needs a phase-1 point ADMM does not), so the
  // retry rescues most transient failures.
  bool backend_fallback = false;
};

struct MpcStep {
  // Plant state at time k (empty for stateless plants) and the input
  // applied during the previous period.
  linalg::Vector x;
  linalg::Vector u_prev;
  // Reference trajectory: references[s-1] is r(k+s), s = 1..β1. If only
  // one entry is supplied it is held constant across the horizon.
  std::vector<linalg::Vector> references;
};

struct MpcResult {
  solvers::QpStatus status = solvers::QpStatus::kMaxIterations;
  linalg::Vector u;            // U(k) = u_prev + ΔU_0, the applied input
  linalg::Vector delta_u;      // ΔU_0
  linalg::Vector predicted_y;  // Y_1 under the returned input
  double objective = 0.0;
  std::size_t solver_iterations = 0;
  // Whether the QP was started from the previous step's stacked move
  // solution (false on the first step and after a constraint-shape
  // change invalidated the cache).
  bool warm_started = false;
  // True when the primary backend failed and the alternate backend's
  // solution was returned instead (degradation tier 1). `status` and
  // `solver_iterations` then describe the fallback solve.
  bool used_fallback_backend = false;
};

class MpcController {
 public:
  MpcController(MpcPlant plant, MpcConfig config);

  MpcResult step(const MpcStep& input);

  // Replace the per-step input constraints (the conservation right-hand
  // side tracks the live workload). Invalidates the warm start when the
  // constraint dimensions change.
  void set_constraints(InputConstraints constraints);

  const MpcPlant& plant() const { return plant_; }
  MpcPlant& mutable_plant() { return plant_; }
  const MpcConfig& config() const { return config_; }

  // The cached stacked move solution seeding the next solve (empty =
  // cold start). Exposed so a checkpointed controller resumes with the
  // same QP iterate path it would have taken uninterrupted.
  const linalg::Vector& warm_start() const { return warm_start_; }
  void restore_warm_start(linalg::Vector warm_start);

 private:
  MpcPlant plant_;
  MpcConfig config_;
  linalg::Vector warm_start_;  // previous stacked move solution
};

}  // namespace gridctl::control
