// The constrained MPC controller (paper Sec. IV-C, eq. 37 and 42–45).
//
// Each step minimizes
//
//   J = Σ_{s=1..β1} || Y_s − r_s ||²_Q + Σ_{τ=0..β2-1} || ΔU_τ ||²_R
//
// over the stacked input moves, subject to the per-step input
// constraints, by transforming to a constrained least-squares problem
// and solving it with the QP layer. The R term is the power-demand
// smoothing mechanism: it prices every change of the workload
// allocation, so the closed loop ramps instead of jumping. Peak shaving
// happens one level up, in the references fed to `step` (clamped to the
// power budget by the reference optimizer).
//
// Two solve paths share this interface:
//
//  * The dense path stacks Θ and the constraints explicitly and hands
//    the problem to the generic LSQ/QP layer. It works for any plant.
//  * The condensed path (backend kCondensed) recognizes the transport
//    structure of the CostController problem — stateless plant whose
//    output j reads only the per-IDC column sum, structured
//    conservation/cap constraints — and solves through
//    CondensedQpSolver without ever materializing Θ or the stacked
//    constraint matrices. It activates only when the structure is
//    detected AND structured constraints were installed via
//    set_constraints(TransportConstraints); otherwise kCondensed
//    degrades to the dense ADMM path.
//
// The controller caches everything that survives a control period:
// Θ (plant- and horizon-only, rebuilt when mutable_plant() was taken),
// the condensed factorization, and all problem arenas — after the first
// step the condensed hot path performs no heap allocation.
#pragma once

#include <memory>
#include <optional>

#include "control/constraints.hpp"
#include "control/prediction.hpp"
#include "solvers/lsq.hpp"
#include "solvers/qp_condensed.hpp"

namespace gridctl::control {

struct MpcWeights {
  // Per-output tracking weights (replicated across the prediction
  // horizon) and per-input move penalties (replicated across the control
  // horizon). Larger r/q ratio = smoother, slower tracking.
  linalg::Vector q;
  linalg::Vector r;
};

struct MpcConfig {
  MpcHorizons horizons;
  MpcWeights weights;
  InputConstraints constraints;
  solvers::LsqBackend backend = solvers::LsqBackend::kAdmm;
  // QP iteration cap for the primary backend; 0 = backend default. A
  // deliberately tiny cap is the fault-injection lever for exercising
  // the degradation chain.
  std::size_t max_solver_iterations = 0;
  // When the primary backend fails (iteration cap / infeasible), re-solve
  // the same stacked problem cold with another backend at its default
  // iteration budget before giving up. Dense primaries retry once with
  // the *other* dense backend (ADMM ↔ active set — the two fail for
  // different reasons, so the retry rescues most transient failures);
  // the condensed primary walks condensed → dense ADMM → active set.
  bool backend_fallback = false;
  // Optional shared cache of condensed factorizations (not owned by any
  // single controller): when set, the condensed configure pulls its
  // factors from here so controllers with identical shape/cost/penalty
  // keys amortize the factorization and share the capacitance matrix.
  std::shared_ptr<solvers::CondensedFactorCache> factor_cache;
};

struct MpcStep {
  // Plant state at time k (empty for stateless plants) and the input
  // applied during the previous period.
  linalg::Vector x;
  linalg::Vector u_prev;
  // Reference trajectory: references[s-1] is r(k+s), s = 1..β1. If only
  // one entry is supplied it is held constant across the horizon.
  std::vector<linalg::Vector> references;
};

struct MpcResult {
  solvers::QpStatus status = solvers::QpStatus::kMaxIterations;
  linalg::Vector u;            // U(k) = u_prev + ΔU_0, the applied input
  linalg::Vector delta_u;      // ΔU_0
  linalg::Vector predicted_y;  // Y_1 under the returned input
  double objective = 0.0;
  std::size_t solver_iterations = 0;
  // Whether the QP was started from the previous step's stacked move
  // solution (false on the first step and after a constraint-shape
  // change invalidated the cache).
  bool warm_started = false;
  // True when the primary backend failed and a fallback backend's
  // solution was returned instead (degradation tier 1). `status` and
  // `solver_iterations` then describe the fallback solve.
  bool used_fallback_backend = false;
};

class MpcController {
 public:
  MpcController(MpcPlant plant, MpcConfig config);

  MpcResult step(const MpcStep& input);
  // Arena variant: writes into `result`, reusing its storage. With the
  // condensed backend active this is the zero-allocation hot path.
  void step_into(const MpcStep& input, MpcResult& result);

  // Replace the per-step input constraints (the conservation right-hand
  // side tracks the live workload). The dense overload clears any
  // installed structured constraints; the structured overload keeps the
  // condensed path eligible and materializes dense rows only if a
  // fallback solve needs them.
  void set_constraints(InputConstraints constraints);
  void set_constraints(TransportConstraints constraints);

  const MpcPlant& plant() const { return plant_; }
  // Mutation invalidates the cached Θ, the detected problem structure
  // and the condensed factorization; they rebuild on the next step.
  MpcPlant& mutable_plant() {
    plant_dirty_ = true;
    return plant_;
  }
  const MpcConfig& config() const { return config_; }

  // Whether the next step would take the condensed structured path.
  bool condensed_active() const;

  // The cached stacked move solution seeding the next solve (empty =
  // cold start). Exposed so a checkpointed controller resumes with the
  // same QP iterate path it would have taken uninterrupted.
  const linalg::Vector& warm_start() const { return warm_start_; }
  void restore_warm_start(linalg::Vector warm_start);

  // The cached condensed dual seeding the next condensed solve (empty =
  // cold / not applicable). Checkpointed alongside the warm start so a
  // condensed-backend resume is bit-identical; a stale or wrong-sized
  // dual is ignored by the solver, so restore is deliberately lenient.
  const linalg::Vector& warm_dual() const { return warm_dual_; }
  void restore_warm_dual(linalg::Vector warm_dual);

 private:
  void refresh_plant_cache();
  // Fill lsq_ (Θ, targets, weights, stacked constraints) for the dense
  // backends; `constant_` keeps the affine output term for predicted_y.
  void prepare_dense_problem(const MpcStep& input);
  void solve_dense(const MpcStep& input, MpcResult& result);
  void finish_dense(const MpcStep& input, MpcResult& result,
                    solvers::ConstrainedLsqResult&& solved);

  MpcPlant plant_;
  MpcConfig config_;
  // Structured constraints, when installed. Mutually exclusive with
  // config_.constraints being authoritative.
  std::optional<TransportConstraints> transport_;

  linalg::Vector warm_start_;  // previous stacked move solution
  linalg::Vector warm_dual_;   // previous condensed dual

  // Lazily rebuilt plant-derived caches.
  bool plant_dirty_ = true;       // structure + Θ + condensed factors stale
  bool theta_dirty_ = true;       // dense Θ (lives in lsq_.f) stale
  bool transport_structure_ = false;
  linalg::Vector cnd_slope_;      // per-IDC output slope (structure scan)
  double cnd_r_ = 0.0;            // uniform move penalty (structure scan)

  solvers::CondensedQpSolver condensed_;
  bool condensed_ready_ = false;

  // Dense-path arenas (lsq_.f doubles as the Θ cache).
  solvers::ConstrainedLsqProblem lsq_;
  linalg::Vector constant_;
  StackedConstraints stacked_;
  InputConstraints dense_constraints_;  // materialized transport_
  bool dense_constraints_dirty_ = true;
  linalg::Vector y_stack_;
};

}  // namespace gridctl::control
