#include "control/constraints.hpp"

#include "solvers/qp.hpp"
#include "util/error.hpp"

namespace gridctl::control {

using linalg::Matrix;
using linalg::Vector;

void InputConstraints::validate(std::size_t num_inputs) const {
  if (h_eq.rows() > 0) {
    require(h_eq.cols() == num_inputs, "InputConstraints: H column mismatch");
    require(h_rhs.size() == h_eq.rows(), "InputConstraints: h size mismatch");
  }
  if (a_in.rows() > 0) {
    require(a_in.cols() == num_inputs, "InputConstraints: Psi column mismatch");
    require(in_lower.size() == a_in.rows() && in_upper.size() == a_in.rows(),
            "InputConstraints: bound size mismatch");
    for (std::size_t i = 0; i < in_lower.size(); ++i) {
      require(in_lower[i] <= in_upper[i], "InputConstraints: lower > upper");
    }
  }
}

Matrix conservation_matrix(std::size_t portals, std::size_t idcs) {
  Matrix h(portals, portals * idcs);
  for (std::size_t i = 0; i < portals; ++i) {
    for (std::size_t j = 0; j < idcs; ++j) h(i, i * idcs + j) = 1.0;
  }
  return h;
}

Matrix idc_load_matrix(std::size_t portals, std::size_t idcs) {
  Matrix psi(idcs, portals * idcs);
  for (std::size_t j = 0; j < idcs; ++j) {
    for (std::size_t i = 0; i < portals; ++i) psi(j, i * idcs + j) = 1.0;
  }
  return psi;
}

StackedConstraints stack_constraints(const InputConstraints& per_step,
                                     const Vector& u_prev,
                                     std::size_t control_horizon) {
  StackedConstraints out;
  stack_constraints_into(per_step, u_prev, control_horizon, out);
  return out;
}

void stack_constraints_into(const InputConstraints& per_step,
                            const Vector& u_prev,
                            std::size_t control_horizon,
                            StackedConstraints& out) {
  const std::size_t m = u_prev.size();
  require(control_horizon >= 1, "stack_constraints: empty control horizon");
  per_step.validate(m);

  const std::size_t eq_rows = per_step.h_eq.rows();
  const std::size_t in_rows = per_step.a_in.rows();
  const std::size_t nn_rows = per_step.nonnegative ? m : 0;
  const std::size_t b2 = control_horizon;

  out.a_eq.resize(eq_rows * b2, m * b2);
  out.b_eq.assign(eq_rows * b2, 0.0);
  out.a_in.resize((in_rows + nn_rows) * b2, m * b2);
  out.lower.assign((in_rows + nn_rows) * b2, 0.0);
  out.upper.assign((in_rows + nn_rows) * b2, 0.0);

  // For U_t = u_prev + Σ_{τ<=t} ΔU_τ, every per-step row (a, lo, up)
  // becomes  lo - a·u_prev <= Σ_{τ<=t} a·ΔU_τ <= up - a·u_prev.
  for (std::size_t t = 0; t < b2; ++t) {
    // Equality block.
    for (std::size_t r = 0; r < eq_rows; ++r) {
      const std::size_t row = t * eq_rows + r;
      double a_dot_uprev = 0.0;
      for (std::size_t j = 0; j < m; ++j) a_dot_uprev += per_step.h_eq(r, j) * u_prev[j];
      for (std::size_t tau = 0; tau <= t; ++tau) {
        for (std::size_t j = 0; j < m; ++j) {
          out.a_eq(row, tau * m + j) = per_step.h_eq(r, j);
        }
      }
      out.b_eq[row] = per_step.h_rhs[r] - a_dot_uprev;
    }
    // General inequality block.
    for (std::size_t r = 0; r < in_rows; ++r) {
      const std::size_t row = t * (in_rows + nn_rows) + r;
      double a_dot_uprev = 0.0;
      for (std::size_t j = 0; j < m; ++j) a_dot_uprev += per_step.a_in(r, j) * u_prev[j];
      for (std::size_t tau = 0; tau <= t; ++tau) {
        for (std::size_t j = 0; j < m; ++j) {
          out.a_in(row, tau * m + j) = per_step.a_in(r, j);
        }
      }
      out.lower[row] = per_step.in_lower[r] - a_dot_uprev;
      out.upper[row] = per_step.in_upper[r] - a_dot_uprev;
    }
    // Non-negativity block: Σ_{τ<=t} ΔU_τ >= -u_prev.
    for (std::size_t j = 0; j < nn_rows; ++j) {
      const std::size_t row = t * (in_rows + nn_rows) + in_rows + j;
      for (std::size_t tau = 0; tau <= t; ++tau) {
        out.a_in(row, tau * m + j) = 1.0;
      }
      out.lower[row] = -u_prev[j];
      out.upper[row] = solvers::kInfinity;
    }
  }
}

void TransportConstraints::validate() const {
  require(!demand.empty(), "TransportConstraints: need at least one portal");
  require(!cap_lower.empty(), "TransportConstraints: need at least one IDC");
  require(cap_upper.size() == cap_lower.size(),
          "TransportConstraints: cap bound size mismatch");
  for (std::size_t j = 0; j < cap_lower.size(); ++j) {
    require(cap_lower[j] <= cap_upper[j],
            "TransportConstraints: cap lower > upper");
  }
}

InputConstraints TransportConstraints::materialize() const {
  validate();
  const std::size_t c = portals();
  const std::size_t n = idcs();
  InputConstraints dense;
  dense.h_eq = conservation_matrix(c, n);
  dense.h_rhs = demand;
  dense.a_in = idc_load_matrix(c, n);
  dense.in_lower = cap_lower;
  dense.in_upper = cap_upper;
  dense.nonnegative = nonnegative;
  return dense;
}

}  // namespace gridctl::control
