// Optimal workload-allocation LP — the paper's eq. (46) (Rao et al.,
// INFOCOM'10), used two ways:
//
//  1. As the *optimal method* baseline the paper compares against: it
//     re-solves on every price/workload change and applies the result
//     instantly.
//  2. As the MPC *control reference* generator (Sec. IV-D): its solution
//     (per-IDC power) is the tracking target, clamped per-IDC to the
//     available power budget to shave peaks.
//
// The server count relaxes to the continuous eq.-35 expression inside
// the LP (cost per req/s of IDC j = Pr_j (b1_j + b0_j / mu_j)), and the
// integral m_j is recovered afterwards by the sleep rule. Power budgets
// enter as per-IDC load caps derived by inverting the power model.
#pragma once

#include <vector>

#include "datacenter/fleet.hpp"
#include "datacenter/idc.hpp"

namespace gridctl::control {

// Objective basis for the allocation LP.
//
//  - kPowerIntegral: true cost rate, Pr_j (b1_j + b0_j/mu_j) per req/s —
//    exact for heterogeneous service rates.
//  - kPriceOnly: Pr_j per req/s — ranks IDCs by price alone. This is
//    what the paper's reported Sec. V allocations actually follow (its
//    Table II service rates differ, which makes price ranking !=
//    cost-per-request ranking; see EXPERIMENTS.md). The paper scenarios
//    default to this basis to reproduce the published trajectories; the
//    ablation bench quantifies the cost gap between the two.
enum class CostBasis { kPowerIntegral, kPriceOnly };

struct ReferenceProblem {
  std::vector<datacenter::IdcConfig> idcs;
  std::vector<double> prices;           // Pr_j, $/MWh, per IDC
  std::vector<double> portal_demands;   // L_i, req/s
  // Per-IDC power budgets, watts; +inf (or empty) = unconstrained.
  std::vector<double> power_budgets_w;
  CostBasis basis = CostBasis::kPowerIntegral;
  // Demand-charge shadow pricing: when `peak_shadow_per_mwh` > 0, power
  // above the running billing-cycle peak `cycle_peak_w[j]` is priced at
  // prices[j] + peak_shadow_per_mwh, so the reference prefers loads that
  // leave every cycle peak where it is (flattening the billed peak)
  // over marginally cheaper energy that would ratchet one up. The
  // per-IDC cost stays piecewise-linear convex in the load, so the
  // transportation greedy solves it exactly with two segments per IDC.
  // Empty `cycle_peak_w` with a positive shadow means "no headroom
  // anywhere" (a uniform uplift — the plain ranking). Zero shadow is
  // bit-identical to the historical problem.
  std::vector<double> cycle_peak_w;
  double peak_shadow_per_mwh = 0.0;
};

struct ReferenceSolution {
  bool feasible = false;
  // True when budgets had to be dropped to serve the demand (the LP with
  // budget caps was infeasible); power then exceeds some budget.
  bool budgets_relaxed = false;
  datacenter::Allocation allocation{1, 1};
  std::vector<double> idc_loads;          // lambda_j
  std::vector<std::size_t> servers;       // m_j from eq. (35)
  std::vector<double> power_w;            // P_j(lambda_j, m_j)
  std::vector<double> reference_power_w;  // min(P_j, budget_j): MPC target
  double cost_rate_per_hour = 0.0;        // sum_j Pr_j P_j, $/h
};

ReferenceSolution solve_reference(const ReferenceProblem& problem);

// Largest load an IDC can carry with the latency bound met and power
// under `budget_w` (inverts P = (b1 + b0/mu) lambda + b0/(mu D)); also
// capped by the all-servers-on capacity. Returns 0 when even zero load
// (the latency-margin servers alone) busts the budget.
double load_cap_for_budget(const datacenter::IdcConfig& idc, double budget_w);

// Green variant ("greening geographical load balancing", paper ref [6]):
// each IDC has `renewable_w` of free renewable generation; only *brown*
// power (demand above the renewable supply) costs money. The LP gains a
// per-IDC brown-power variable g_j:
//
//   minimize    sum_j Pr_j g_j
//   subject to  g_j >= P_j(lambda_j) - renewable_j,  g_j >= 0
//               + the usual conservation / capacity / non-negativity.
struct GreenReferenceProblem {
  std::vector<datacenter::IdcConfig> idcs;
  std::vector<double> prices;          // Pr_j, $/MWh
  std::vector<double> portal_demands;  // L_i, req/s
  std::vector<double> renewable_w;     // free renewable power per IDC
};

struct GreenReferenceSolution {
  bool feasible = false;
  datacenter::Allocation allocation{1, 1};
  std::vector<double> idc_loads;
  std::vector<std::size_t> servers;
  std::vector<double> power_w;        // total power per IDC
  std::vector<double> brown_power_w;  // max(0, power - renewable)
  double brown_cost_rate_per_hour = 0.0;
  double brown_energy_fraction = 0.0;  // brown / total power
};

GreenReferenceSolution solve_green_reference(
    const GreenReferenceProblem& problem);

// Capacity cap from M_j alone (no budget).
double load_cap_for_capacity(const datacenter::IdcConfig& idc);

}  // namespace gridctl::control
