// Checkpoint/restore for the online control runtime.
//
// A `RuntimeCheckpoint` is everything the runtime needs to resume
// bit-identically after a kill: the controller's full mutable state
// (allocation, server vector, MPC warm-start cache, RLS predictor
// state), the plant integrators (per-IDC energy/cost/overload, fluid
// queue backlogs), the last applied feed values with their nominal
// times, per-feed applied-tick counts (fault injection is stateless
// counter hashing, so a cursor is the *entire* feed state), the
// recorded trace so the final summary covers the whole window, and the
// deterministic telemetry counters.
//
// The JSON codec round-trips doubles exactly (dump_json prints the
// shortest representation that reparses to the same value), so a
// restored run's state vectors are bit-identical, not just close.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_controller.hpp"
#include "core/simulation.hpp"
#include "engine/telemetry.hpp"
#include "runtime/stats.hpp"
#include "util/json.hpp"

namespace gridctl::runtime {

// Current schema identifier; bump on incompatible layout changes.
// /2 added the billing-meter and battery state (controller) and the
// grid_power_w / battery_soc_j trace series. /3 added the optional
// admission state (routing table + token-bucket levels) for fleets fed
// by a control-plane admission layer. /2 and /1 checkpoints still load
// (the new fields default to feature-off).
inline constexpr const char* kCheckpointSchema = "gridctl.runtime.checkpoint/3";

struct RuntimeCheckpoint {
  // Progress: the next control step to execute and how many ticks of
  // each feed have been consumed (applied or observed-dropped).
  std::uint64_t next_step = 0;
  std::uint64_t price_ticks_consumed = 0;
  std::uint64_t workload_ticks_consumed = 0;

  // The values the control loop currently operates on, with the nominal
  // event time of the tick that delivered them (staleness accounting).
  std::vector<double> held_prices;
  double held_price_time_s = 0.0;
  std::vector<double> held_demands;
  double held_demand_time_s = 0.0;

  // Per-IDC power after the last plant advance — the feedback a
  // demand-responsive price model sees on the next tick.
  std::vector<double> last_power_w;

  // A deadline miss degrades the *following* period; true when the
  // next step after restore must take the no-QP hold path.
  bool degrade_pending = false;

  // Controller, plant and bookkeeping state.
  core::CostController::State controller;
  struct IdcState {
    std::size_t servers_on = 0;
    double load_rps = 0.0;
    double energy_joules = 0.0;
    double cost_dollars = 0.0;
    double overload_seconds = 0.0;
  };
  std::vector<IdcState> fleet;
  std::vector<double> queue_backlogs_req;
  core::SimulationTrace trace;
  engine::RunTelemetry telemetry;
  RuntimeStats stats;

  // Admission resume state (routing epochs, fleet portal map and
  // token-bucket levels) when the session's workload is a control-plane
  // RoutedWorkload view; null otherwise. On restore the plane's plan
  // must reproduce this state exactly — admission/plan.hpp
  // `RoutedWorkload::validate_checkpoint_state`.
  JsonValue admission;

  JsonValue to_json() const;
  static RuntimeCheckpoint from_json(const JsonValue& json);

  // Shape consistency against the scenario a runtime is resuming into;
  // throws InvalidArgument on any mismatch.
  void validate_for(const core::Scenario& scenario) const;
};

// File convenience wrappers (JSON text, pretty-printed).
void save_checkpoint(const std::string& path,
                     const RuntimeCheckpoint& checkpoint);
RuntimeCheckpoint load_checkpoint(const std::string& path);

}  // namespace gridctl::runtime
