#include "runtime/feed.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gridctl::runtime {

namespace {

// splitmix64 finalizer — the stateless uniform generator behind fault
// injection. Pure function of its input, so any tick's fate can be
// recomputed after a restore.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from (seed, sequence, salt).
double hash01(std::uint64_t seed, std::uint64_t sequence, std::uint64_t salt) {
  const std::uint64_t h = mix64(mix64(seed ^ (salt * 0xd6e8feb86659fd93ULL)) ^
                                sequence);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultSpec::validate() const {
  require(drop_probability >= 0.0 && drop_probability <= 1.0,
          "FaultSpec: drop_probability must be in [0, 1]");
  require(late_probability >= 0.0 && late_probability <= 1.0,
          "FaultSpec: late_probability must be in [0, 1]");
  require(max_lateness_s >= 0.0, "FaultSpec: max_lateness_s must be >= 0");
  require(jitter_s >= 0.0, "FaultSpec: jitter_s must be >= 0");
  require(late_probability == 0.0 || max_lateness_s > 0.0,
          "FaultSpec: late ticks need a positive max_lateness_s");
}

TickStream::TickStream(double start_s, double period_s, std::uint64_t count,
                       FaultSpec faults)
    : start_s_(start_s),
      period_s_(period_s),
      count_(count),
      faults_(faults) {
  require(period_s > 0.0, "TickStream: period must be positive");
  faults_.validate();
  // FIFO monotonicity: a tick's arrival is the running max over its own
  // raw arrival and everything ahead of it. The max delay bounds how
  // far back that max can reach, keeping at() a pure O(window) function.
  const double max_delay = faults_.jitter_s + faults_.max_lateness_s;
  window_ = static_cast<std::uint64_t>(std::ceil(max_delay / period_s_)) + 1;
}

double TickStream::raw_arrival(std::uint64_t sequence) const {
  const double nominal =
      start_s_ + static_cast<double>(sequence) * period_s_;
  double delay = 0.0;
  if (faults_.jitter_s > 0.0) {
    delay += faults_.jitter_s * hash01(faults_.seed, sequence, 1);
  }
  if (faults_.late_probability > 0.0 &&
      hash01(faults_.seed, sequence, 2) < faults_.late_probability) {
    delay += faults_.max_lateness_s * hash01(faults_.seed, sequence, 3);
  }
  return nominal + delay;
}

Tick TickStream::at(std::uint64_t sequence) const {
  require(sequence < count_, "TickStream: sequence out of range");
  Tick tick;
  tick.sequence = sequence;
  tick.time_s = start_s_ + static_cast<double>(sequence) * period_s_;
  tick.dropped = faults_.drop_probability > 0.0 &&
                 hash01(faults_.seed, sequence, 0) < faults_.drop_probability;
  double arrival = raw_arrival(sequence);
  const std::uint64_t back = std::min(window_, sequence);
  for (std::uint64_t i = sequence - back; i < sequence; ++i) {
    arrival = std::max(arrival, raw_arrival(i));
  }
  tick.arrival_s = arrival;
  return tick;
}

std::optional<Tick> TickStream::next() {
  if (cursor_ >= count_) return std::nullopt;
  return at(cursor_++);
}

std::optional<double> TickStream::peek_arrival() const {
  if (cursor_ >= count_) return std::nullopt;
  return at(cursor_).arrival_s;
}

PriceFeed::PriceFeed(std::shared_ptr<const market::PriceModel> model,
                     std::vector<std::size_t> idc_regions, TickStream stream)
    : Feed("price", std::move(stream)),
      model_(std::move(model)),
      regions_(std::move(idc_regions)) {
  require(model_ != nullptr, "PriceFeed: null price model");
  require(!regions_.empty(), "PriceFeed: need at least one IDC region");
  for (std::size_t region : regions_) {
    require(region < model_->num_regions(),
            "PriceFeed: IDC region out of range for the price model");
  }
}

std::vector<double> PriceFeed::values(
    double time_s, const std::vector<double>& power_feedback_w) const {
  require(power_feedback_w.size() == regions_.size(),
          "PriceFeed: power feedback size mismatch");
  std::vector<double> prices(regions_.size());
  for (std::size_t j = 0; j < regions_.size(); ++j) {
    prices[j] = model_
                    ->price(regions_[j], units::Seconds{time_s},
                            units::Watts{power_feedback_w[j]})
                    .value();
  }
  return prices;
}

WorkloadFeed::WorkloadFeed(
    std::shared_ptr<const workload::WorkloadSource> source, TickStream stream)
    : Feed("workload", std::move(stream)), source_(std::move(source)) {
  require(source_ != nullptr, "WorkloadFeed: null workload source");
}

}  // namespace gridctl::runtime
