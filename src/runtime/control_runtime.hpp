// The online control runtime: an event-driven service wrapping the
// paper's two-time-scale controller (fast MPC allocation + slow sleep
// loop, both inside core::CostController::step) so it runs from
// streaming feeds instead of a batch loop.
//
// Architecture: ControlRuntime is the classic two-thread, single-fleet
// driver over a FleetSession (runtime/fleet_session.hpp, which owns all
// control state). A pump thread polls the session's merged event stream
// and pushes it through a bounded queue, pacing against the EventClock
// when an acceleration is set; the control thread (the caller of
// `run()`) applies events in order. Multi-fleet execution lives one
// layer up in controlplane::ControlPlane, which drives many sessions on
// a fixed worker pool instead of two threads per fleet.
//
// Determinism: event ordering depends on event time only, never wall
// time, so a seeded runtime at *any* acceleration (including free run)
// reproduces the batch `run_simulation` trajectory bit-identically when
// faults are off, and reproduces *itself* when they are on. The one
// intentional exception is `degrade_on_deadline_miss`, which lets real
// wall-clock overruns change control decisions — off by default.
//
// Checkpoint/restore: `checkpoint()` captures the full state after the
// last executed step (runtime/checkpoint.hpp); a runtime constructed
// from a checkpoint resumes bit-identically — verified by the
// kill-and-resume test in tests/runtime/.
#pragma once

#include <atomic>

#include "runtime/fleet_session.hpp"

namespace gridctl::runtime {

class ControlRuntime {
 public:
  // Fresh runtime at the start of the scenario window.
  ControlRuntime(core::Scenario scenario, RuntimeOptions options);
  // Resume from a checkpoint (validated against the scenario). The
  // feeds rewind to their consumed-tick cursors — fault injection is
  // stateless, so the replay is exact.
  ControlRuntime(core::Scenario scenario, RuntimeOptions options,
                 const RuntimeCheckpoint& checkpoint);
  ~ControlRuntime();

  ControlRuntime(const ControlRuntime&) = delete;
  ControlRuntime& operator=(const ControlRuntime&) = delete;

  // Drive the loops to completion (or stop_after_step / request_stop).
  // The pump runs on its own thread; the control loop runs on the
  // calling thread. In strict invariant mode a violation propagates as
  // check::InvariantViolationError after the pump is joined. Call once
  // per ControlRuntime instance.
  RuntimeResult run();

  // Thread-safe; the control loop stops at the next step boundary and
  // run() returns a resumable (completed = false) result.
  void request_stop() { stop_requested_.store(true); }

  // Full resume state after the last executed step. Valid after run()
  // returns (and between construction and run()) — at those points the
  // caller is the session's only thread, so it may claim both halves.
  RuntimeCheckpoint checkpoint() const {
    util::RoleGuard stream(session_.stream_role());
    util::RoleGuard control(session_.control_role());
    return session_.checkpoint();
  }

  const core::Scenario& scenario() const { return session_.scenario(); }

 private:
  // Declared before session_: the session holds a pointer to the clock.
  EventClock clock_;
  FleetSession session_;
  std::atomic<bool> stop_requested_{false};
  bool ran_ = false;
};

}  // namespace gridctl::runtime
