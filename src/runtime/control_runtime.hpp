// The online control runtime: an event-driven service wrapping the
// paper's two-time-scale controller (fast MPC allocation + slow sleep
// loop, both inside core::CostController::step) so it runs from
// streaming feeds instead of a batch loop.
//
// Architecture: a pump thread merges the price feed, the workload feed
// and the control-period timer into one globally arrival-ordered event
// sequence (each TickStream is FIFO-monotone, so a k-way merge on head
// arrivals suffices) and pushes it through a bounded queue, pacing
// against the EventClock when an acceleration is set. The control
// thread consumes events in order: feed ticks refresh the held
// price/demand values (payloads resolved at consume time so
// demand-responsive price models see the freshest power feedback), and
// every timer event executes one control period exactly as the batch
// simulation does — same plant advance, same trace recording, same
// telemetry.
//
// Determinism: event ordering depends on event time only, never wall
// time, so a seeded runtime at *any* acceleration (including free run)
// reproduces the batch `run_simulation` trajectory bit-identically when
// faults are off, and reproduces *itself* when they are on. The one
// intentional exception is `degrade_on_deadline_miss`, which lets real
// wall-clock overruns change control decisions — off by default.
//
// Checkpoint/restore: `checkpoint()` captures the full state after the
// last executed step (runtime/checkpoint.hpp); a runtime constructed
// from a checkpoint resumes bit-identically — verified by the
// kill-and-resume test in tests/runtime/.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cost_controller.hpp"
#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "datacenter/fleet.hpp"
#include "datacenter/fluid_queue.hpp"
#include "engine/telemetry.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/event_clock.hpp"
#include "runtime/feed.hpp"
#include "runtime/stats.hpp"

namespace gridctl::runtime {

// Live progress snapshot, delivered to RuntimeOptions::on_progress.
struct Progress {
  std::uint64_t step = 0;        // control steps executed so far
  std::uint64_t total_steps = 0;
  double event_time_s = 0.0;     // end of the last executed period
  double total_power_w = 0.0;
  double cumulative_cost = 0.0;
  double lag_s = 0.0;            // pacing lag at the last step (0 free-run)
  std::uint64_t deadline_misses = 0;
  std::uint64_t degraded_steps = 0;
  std::uint64_t dropped_ticks = 0;
  std::uint64_t invariant_violations = 0;
};

struct RuntimeOptions {
  // Event-seconds per wall second; 0 = free run (as fast as the CPU
  // allows, no pacing, no deadline).
  double acceleration = 0.0;
  // Event-queue capacity between the pump and the control thread.
  std::size_t queue_capacity = 64;
  // Fault injection per feed (deterministic counter hashing; see
  // runtime/feed.hpp). Defaults: clean feeds.
  FaultSpec price_faults;
  FaultSpec workload_faults;
  // Seed controller + fleet at the pre-window converged operating point
  // (mirrors SimulationOptions::warm_start). Ignored when restoring.
  bool warm_start = true;
  // Keep the per-step trace in the result (always kept internally for
  // the summary and for checkpoints).
  bool record_trace = true;
  // Per-step wall budget in seconds; a step exceeding it counts as a
  // deadline miss. 0 = derive from the control period and acceleration
  // when paced; no deadline when free-running.
  double deadline_s = 0.0;
  // After a missed deadline, serve the *next* period with the no-QP
  // hold-last-feasible step so the loop catches up. Trades determinism
  // for liveness (wall clock then influences decisions) — off by
  // default; the miss counters are always recorded either way.
  bool degrade_on_deadline_miss = false;
  // Stop (resumably) once the absolute step index reaches this value;
  // 0 = run to the end of the scenario window.
  std::uint64_t stop_after_step = 0;
  // Invoke `on_progress` every this many control steps (0 = never).
  std::size_t progress_every = 0;
  std::function<void(const Progress&)> on_progress;
};

struct RuntimeResult {
  core::SimulationSummary summary;
  engine::RunTelemetry telemetry;
  RuntimeStats stats;
  // Null unless RuntimeOptions::record_trace.
  std::shared_ptr<const core::SimulationTrace> trace;
  bool completed = false;  // reached the end of the scenario window
};

class ControlRuntime {
 public:
  // Fresh runtime at the start of the scenario window.
  ControlRuntime(core::Scenario scenario, RuntimeOptions options);
  // Resume from a checkpoint (validated against the scenario). The
  // feeds rewind to their consumed-tick cursors — fault injection is
  // stateless, so the replay is exact.
  ControlRuntime(core::Scenario scenario, RuntimeOptions options,
                 const RuntimeCheckpoint& checkpoint);
  ~ControlRuntime();

  ControlRuntime(const ControlRuntime&) = delete;
  ControlRuntime& operator=(const ControlRuntime&) = delete;

  // Drive the loops to completion (or stop_after_step / request_stop).
  // The pump runs on its own thread; the control loop runs on the
  // calling thread. In strict invariant mode a violation propagates as
  // check::InvariantViolationError after the pump is joined. Call once
  // per ControlRuntime instance.
  RuntimeResult run();

  // Thread-safe; the control loop stops at the next step boundary and
  // run() returns a resumable (completed = false) result.
  void request_stop() { stop_requested_.store(true); }

  // Full resume state after the last executed step. Valid after run()
  // returns (and between construction and run()).
  RuntimeCheckpoint checkpoint() const;

  const core::Scenario& scenario() const { return scenario_; }

 private:
  void init_common();
  void restore_from(const RuntimeCheckpoint& checkpoint);
  void warm_start();
  void execute_step(std::uint64_t step);
  RuntimeResult finish(bool completed, double wall_s);

  core::Scenario scenario_;
  RuntimeOptions options_;
  EventClock clock_;

  std::unique_ptr<core::CostController> controller_;
  datacenter::Fleet fleet_;
  std::vector<datacenter::FluidQueue> queues_;
  std::unique_ptr<PriceFeed> price_feed_;
  std::unique_ptr<WorkloadFeed> workload_feed_;
  TickStream timer_;

  // Control-thread state.
  std::vector<double> held_prices_;
  double held_price_time_s_ = 0.0;
  std::vector<double> held_demands_;
  double held_demand_time_s_ = 0.0;
  std::vector<double> last_power_;
  std::uint64_t next_step_ = 0;
  std::uint64_t price_ticks_consumed_ = 0;
  std::uint64_t workload_ticks_consumed_ = 0;
  bool degrade_pending_ = false;

  core::SimulationTrace trace_;
  engine::RunTelemetry telemetry_;
  RuntimeStats stats_;

  std::atomic<bool> stop_requested_{false};
  bool ran_ = false;
};

}  // namespace gridctl::runtime
