#include "runtime/checkpoint.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace gridctl::runtime {

namespace {

JsonValue num(double v) { return JsonValue(v); }
JsonValue num(std::uint64_t v) { return JsonValue(static_cast<double>(v)); }

std::uint64_t as_u64(const JsonValue& v) {
  const double d = v.as_number();
  require(d >= 0.0 && d == std::floor(d),
          "checkpoint: expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

JsonValue doubles_to_json(const std::vector<double>& values) {
  JsonValue::Array array;
  array.reserve(values.size());
  for (double v : values) array.emplace_back(v);
  return JsonValue(std::move(array));
}

std::vector<double> doubles_from_json(const JsonValue& json) {
  std::vector<double> values;
  values.reserve(json.as_array().size());
  for (const auto& v : json.as_array()) values.push_back(v.as_number());
  return values;
}

JsonValue sizes_to_json(const std::vector<std::size_t>& values) {
  JsonValue::Array array;
  array.reserve(values.size());
  for (std::size_t v : values) array.emplace_back(static_cast<double>(v));
  return JsonValue(std::move(array));
}

std::vector<std::size_t> sizes_from_json(const JsonValue& json) {
  std::vector<std::size_t> values;
  values.reserve(json.as_array().size());
  for (const auto& v : json.as_array()) {
    values.push_back(static_cast<std::size_t>(as_u64(v)));
  }
  return values;
}

JsonValue series_to_json(const std::vector<std::vector<double>>& series) {
  JsonValue::Array array;
  array.reserve(series.size());
  for (const auto& row : series) array.push_back(doubles_to_json(row));
  return JsonValue(std::move(array));
}

std::vector<std::vector<double>> series_from_json(const JsonValue& json) {
  std::vector<std::vector<double>> series;
  series.reserve(json.as_array().size());
  for (const auto& row : json.as_array()) {
    series.push_back(doubles_from_json(row));
  }
  return series;
}

JsonValue matrix_to_json(const linalg::Matrix& m) {
  std::vector<double> data(m.data(), m.data() + m.rows() * m.cols());
  JsonValue::Object object;
  object.emplace("rows", num(static_cast<std::uint64_t>(m.rows())));
  object.emplace("cols", num(static_cast<std::uint64_t>(m.cols())));
  object.emplace("data", doubles_to_json(data));
  return JsonValue(std::move(object));
}

linalg::Matrix matrix_from_json(const JsonValue& json) {
  const auto rows = static_cast<std::size_t>(as_u64(json.at("rows")));
  const auto cols = static_cast<std::size_t>(as_u64(json.at("cols")));
  const std::vector<double> data = doubles_from_json(json.at("data"));
  require(data.size() == rows * cols, "checkpoint: matrix data size mismatch");
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < data.size(); ++i) m.data()[i] = data[i];
  return m;
}

JsonValue histogram_to_json(const engine::StepTimingHistogram& hist) {
  std::vector<std::size_t> counts(hist.counts.begin(), hist.counts.end());
  JsonValue::Object object;
  object.emplace("counts", sizes_to_json(counts));
  object.emplace("samples", num(hist.samples));
  object.emplace("total_us", num(hist.total_us));
  object.emplace("max_us", num(hist.max_us));
  return JsonValue(std::move(object));
}

engine::StepTimingHistogram histogram_from_json(const JsonValue& json) {
  engine::StepTimingHistogram hist;
  const auto counts = sizes_from_json(json.at("counts"));
  require(counts.size() == engine::StepTimingHistogram::kBuckets,
          "checkpoint: step histogram bucket count mismatch");
  for (std::size_t i = 0; i < counts.size(); ++i) hist.counts[i] = counts[i];
  hist.samples = as_u64(json.at("samples"));
  hist.total_us = json.at("total_us").as_number();
  hist.max_us = json.at("max_us").as_number();
  return hist;
}

JsonValue telemetry_counters_to_json(const engine::RunTelemetry& telemetry) {
  JsonValue::Object object;
  object.emplace("warm_start_s", num(telemetry.warm_start_s));
  object.emplace("policy_s", num(telemetry.policy_s));
  object.emplace("plant_s", num(telemetry.plant_s));
  object.emplace("record_s", num(telemetry.record_s));
  object.emplace("total_s", num(telemetry.total_s));
  object.emplace("steps", num(static_cast<std::uint64_t>(telemetry.steps)));
  object.emplace("solver_calls", num(telemetry.solver_calls));
  object.emplace("solver_iterations", num(telemetry.solver_iterations));
  object.emplace("status_optimal", num(telemetry.status_optimal));
  object.emplace("status_max_iterations", num(telemetry.status_max_iterations));
  object.emplace("status_infeasible", num(telemetry.status_infeasible));
  object.emplace("warm_start_hits", num(telemetry.warm_start_hits));
  object.emplace("fallback_backend_retries",
                 num(telemetry.fallback_backend_retries));
  object.emplace("fallback_holds", num(telemetry.fallback_holds));
  object.emplace("invariant_checks", num(telemetry.invariants.checks));
  std::vector<std::size_t> by_kind(telemetry.invariants.by_kind.begin(),
                                   telemetry.invariants.by_kind.end());
  object.emplace("invariants_by_kind", sizes_to_json(by_kind));
  object.emplace("step_hist", histogram_to_json(telemetry.step_hist));
  return JsonValue(std::move(object));
}

engine::RunTelemetry telemetry_counters_from_json(const JsonValue& json) {
  engine::RunTelemetry telemetry;
  telemetry.warm_start_s = json.at("warm_start_s").as_number();
  telemetry.policy_s = json.at("policy_s").as_number();
  telemetry.plant_s = json.at("plant_s").as_number();
  telemetry.record_s = json.at("record_s").as_number();
  telemetry.total_s = json.at("total_s").as_number();
  telemetry.steps = static_cast<std::size_t>(as_u64(json.at("steps")));
  telemetry.solver_calls = as_u64(json.at("solver_calls"));
  telemetry.solver_iterations = as_u64(json.at("solver_iterations"));
  telemetry.status_optimal = as_u64(json.at("status_optimal"));
  telemetry.status_max_iterations = as_u64(json.at("status_max_iterations"));
  telemetry.status_infeasible = as_u64(json.at("status_infeasible"));
  telemetry.warm_start_hits = as_u64(json.at("warm_start_hits"));
  telemetry.fallback_backend_retries =
      as_u64(json.at("fallback_backend_retries"));
  telemetry.fallback_holds = as_u64(json.at("fallback_holds"));
  telemetry.invariants.checks = as_u64(json.at("invariant_checks"));
  // <=: checkpoints written before an invariant kind was added carry a
  // shorter counter vector; the missing tail kinds restore as zero.
  const auto by_kind = sizes_from_json(json.at("invariants_by_kind"));
  require(by_kind.size() <= check::kNumInvariants,
          "checkpoint: invariant counter arity mismatch");
  for (std::size_t i = 0; i < by_kind.size(); ++i) {
    telemetry.invariants.by_kind[i] = by_kind[i];
  }
  telemetry.step_hist = histogram_from_json(json.at("step_hist"));
  return telemetry;
}

JsonValue stats_to_json_impl(const RuntimeStats& stats) {
  JsonValue::Object object;
  object.emplace("price_ticks", num(stats.price_ticks));
  object.emplace("workload_ticks", num(stats.workload_ticks));
  object.emplace("dropped_ticks", num(stats.dropped_ticks));
  object.emplace("late_ticks", num(stats.late_ticks));
  object.emplace("stale_price_steps", num(stats.stale_price_steps));
  object.emplace("stale_workload_steps", num(stats.stale_workload_steps));
  // dump_json has no spelling for infinity (free run = no deadline);
  // null stands in for it and round-trips through from_json.
  object.emplace("deadline_s", std::isfinite(stats.deadline_s)
                                   ? num(stats.deadline_s)
                                   : JsonValue());
  object.emplace("deadline_misses", num(stats.deadline_misses));
  object.emplace("degraded_steps", num(stats.degraded_steps));
  object.emplace("max_lag_s", num(stats.max_lag_s));
  object.emplace("max_queue_depth",
                 num(static_cast<std::uint64_t>(stats.max_queue_depth)));
  object.emplace("step_wall_hist", histogram_to_json(stats.step_wall_hist));
  return JsonValue(std::move(object));
}

RuntimeStats stats_from_json(const JsonValue& json) {
  RuntimeStats stats;
  stats.price_ticks = as_u64(json.at("price_ticks"));
  stats.workload_ticks = as_u64(json.at("workload_ticks"));
  stats.dropped_ticks = as_u64(json.at("dropped_ticks"));
  stats.late_ticks = as_u64(json.at("late_ticks"));
  stats.stale_price_steps = as_u64(json.at("stale_price_steps"));
  stats.stale_workload_steps = as_u64(json.at("stale_workload_steps"));
  const JsonValue& deadline = json.at("deadline_s");
  stats.deadline_s = deadline.is_null()
                         ? std::numeric_limits<double>::infinity()
                         : deadline.as_number();
  stats.deadline_misses = as_u64(json.at("deadline_misses"));
  stats.degraded_steps = as_u64(json.at("degraded_steps"));
  stats.max_lag_s = json.at("max_lag_s").as_number();
  stats.max_queue_depth =
      static_cast<std::size_t>(as_u64(json.at("max_queue_depth")));
  stats.step_wall_hist = histogram_from_json(json.at("step_wall_hist"));
  return stats;
}

JsonValue controller_to_json(const core::CostController::State& state) {
  JsonValue::Object object;
  object.emplace("allocation", doubles_to_json(state.allocation));
  object.emplace("servers", sizes_to_json(state.servers));
  object.emplace("step_count",
                 num(static_cast<std::uint64_t>(state.step_count)));
  object.emplace("mpc_warm_start", doubles_to_json(state.mpc_warm_start));
  object.emplace("mpc_warm_dual", doubles_to_json(state.mpc_warm_dual));
  JsonValue::Array predictors;
  predictors.reserve(state.predictors.size());
  for (const auto& p : state.predictors) {
    JsonValue::Object predictor;
    predictor.emplace("theta", doubles_to_json(p.theta));
    predictor.emplace("covariance", matrix_to_json(p.covariance));
    predictor.emplace("updates", num(static_cast<std::uint64_t>(p.updates)));
    predictor.emplace("history", doubles_to_json(p.history));
    predictors.push_back(JsonValue(std::move(predictor)));
  }
  object.emplace("predictors", JsonValue(std::move(predictors)));
  object.emplace("battery_soc_j", doubles_to_json(state.battery_soc_j));
  object.emplace("battery_avg_w", doubles_to_json(state.battery_avg_w));
  JsonValue::Object billing;
  billing.emplace("cycle_index", num(state.billing.cycle_index));
  billing.emplace("cycle_peaks_w", doubles_to_json(state.billing.cycle_peaks_w));
  billing.emplace("coincident_peaks_w",
                  doubles_to_json(state.billing.coincident_peaks_w));
  billing.emplace("energy_dollars", num(state.billing.energy_dollars));
  billing.emplace("finalized_demand_dollars",
                  num(state.billing.finalized_demand_dollars));
  billing.emplace("finalized_coincident_dollars",
                  num(state.billing.finalized_coincident_dollars));
  object.emplace("billing", JsonValue(std::move(billing)));
  return JsonValue(std::move(object));
}

core::CostController::State controller_from_json(const JsonValue& json) {
  core::CostController::State state;
  state.allocation = doubles_from_json(json.at("allocation"));
  state.servers = sizes_from_json(json.at("servers"));
  state.step_count = static_cast<std::size_t>(as_u64(json.at("step_count")));
  state.mpc_warm_start = doubles_from_json(json.at("mpc_warm_start"));
  // Checkpoints written before the condensed backend existed have no
  // dual cache; they restore cold (exactly what the writer would have
  // produced for a dense-backend run).
  if (json.as_object().count("mpc_warm_dual") > 0) {
    state.mpc_warm_dual = doubles_from_json(json.at("mpc_warm_dual"));
  }
  for (const auto& p : json.at("predictors").as_array()) {
    workload::ArPredictor::State predictor;
    predictor.theta = doubles_from_json(p.at("theta"));
    predictor.covariance = matrix_from_json(p.at("covariance"));
    predictor.updates = static_cast<std::size_t>(as_u64(p.at("updates")));
    predictor.history = doubles_from_json(p.at("history"));
    state.predictors.push_back(std::move(predictor));
  }
  // Schema /1 checkpoints predate billing and storage; the defaults
  // restore a fresh meter and initial SoC, which is exactly the state a
  // /1-era run was in (the features did not exist).
  if (json.as_object().count("battery_soc_j") > 0) {
    state.battery_soc_j = doubles_from_json(json.at("battery_soc_j"));
    state.battery_avg_w = doubles_from_json(json.at("battery_avg_w"));
    const JsonValue& billing = json.at("billing");
    state.billing.cycle_index = as_u64(billing.at("cycle_index"));
    state.billing.cycle_peaks_w = doubles_from_json(billing.at("cycle_peaks_w"));
    state.billing.coincident_peaks_w =
        doubles_from_json(billing.at("coincident_peaks_w"));
    state.billing.energy_dollars = billing.at("energy_dollars").as_number();
    state.billing.finalized_demand_dollars =
        billing.at("finalized_demand_dollars").as_number();
    state.billing.finalized_coincident_dollars =
        billing.at("finalized_coincident_dollars").as_number();
  }
  return state;
}

JsonValue trace_to_json(const core::SimulationTrace& trace) {
  JsonValue::Object object;
  object.emplace("policy", JsonValue(trace.policy));
  object.emplace("ts_s", num(trace.ts_s));
  object.emplace("time_s", doubles_to_json(trace.time_s));
  object.emplace("power_w", series_to_json(trace.power_w));
  object.emplace("servers_on", series_to_json(trace.servers_on));
  object.emplace("idc_load_rps", series_to_json(trace.idc_load_rps));
  object.emplace("price_per_mwh", series_to_json(trace.price_per_mwh));
  object.emplace("latency_s", series_to_json(trace.latency_s));
  object.emplace("backlog_req", series_to_json(trace.backlog_req));
  object.emplace("transient_delay_s", series_to_json(trace.transient_delay_s));
  object.emplace("portal_rps", series_to_json(trace.portal_rps));
  object.emplace("total_power_w", doubles_to_json(trace.total_power_w));
  object.emplace("cumulative_cost", doubles_to_json(trace.cumulative_cost));
  if (!trace.grid_power_w.empty()) {
    object.emplace("grid_power_w", series_to_json(trace.grid_power_w));
    object.emplace("battery_soc_j", series_to_json(trace.battery_soc_j));
  }
  return JsonValue(std::move(object));
}

core::SimulationTrace trace_from_json(const JsonValue& json) {
  core::SimulationTrace trace;
  trace.policy = json.at("policy").as_string();
  trace.ts_s = json.at("ts_s").as_number();
  trace.time_s = doubles_from_json(json.at("time_s"));
  trace.power_w = series_from_json(json.at("power_w"));
  trace.servers_on = series_from_json(json.at("servers_on"));
  trace.idc_load_rps = series_from_json(json.at("idc_load_rps"));
  trace.price_per_mwh = series_from_json(json.at("price_per_mwh"));
  trace.latency_s = series_from_json(json.at("latency_s"));
  trace.backlog_req = series_from_json(json.at("backlog_req"));
  trace.transient_delay_s = series_from_json(json.at("transient_delay_s"));
  trace.portal_rps = series_from_json(json.at("portal_rps"));
  trace.total_power_w = doubles_from_json(json.at("total_power_w"));
  trace.cumulative_cost = doubles_from_json(json.at("cumulative_cost"));
  // Storage columns exist only for runs with batteries (and in no /1
  // checkpoint at all).
  if (json.as_object().count("grid_power_w") > 0) {
    trace.grid_power_w = series_from_json(json.at("grid_power_w"));
    trace.battery_soc_j = series_from_json(json.at("battery_soc_j"));
  }
  return trace;
}

}  // namespace

JsonValue RuntimeStats::to_json() const { return stats_to_json_impl(*this); }

JsonValue RuntimeCheckpoint::to_json() const {
  JsonValue::Object root;
  root.emplace("schema", JsonValue(std::string(kCheckpointSchema)));

  JsonValue::Object progress;
  progress.emplace("next_step", num(next_step));
  progress.emplace("price_ticks_consumed", num(price_ticks_consumed));
  progress.emplace("workload_ticks_consumed", num(workload_ticks_consumed));
  progress.emplace("degrade_pending", JsonValue(degrade_pending));
  root.emplace("progress", JsonValue(std::move(progress)));

  JsonValue::Object held;
  held.emplace("prices", doubles_to_json(held_prices));
  held.emplace("price_time_s", num(held_price_time_s));
  held.emplace("demands", doubles_to_json(held_demands));
  held.emplace("demand_time_s", num(held_demand_time_s));
  held.emplace("last_power_w", doubles_to_json(last_power_w));
  root.emplace("held", JsonValue(std::move(held)));

  root.emplace("controller", controller_to_json(controller));

  JsonValue::Array fleet_json;
  fleet_json.reserve(fleet.size());
  for (const auto& idc : fleet) {
    JsonValue::Object state;
    state.emplace("servers_on", num(static_cast<std::uint64_t>(idc.servers_on)));
    state.emplace("load_rps", num(idc.load_rps));
    state.emplace("energy_joules", num(idc.energy_joules));
    state.emplace("cost_dollars", num(idc.cost_dollars));
    state.emplace("overload_seconds", num(idc.overload_seconds));
    fleet_json.push_back(JsonValue(std::move(state)));
  }
  root.emplace("fleet", JsonValue(std::move(fleet_json)));
  root.emplace("queue_backlogs_req", doubles_to_json(queue_backlogs_req));

  root.emplace("trace", trace_to_json(trace));
  root.emplace("telemetry", telemetry_counters_to_json(telemetry));
  root.emplace("stats", stats_to_json_impl(stats));
  if (!admission.is_null()) root.emplace("admission", admission);
  return JsonValue(std::move(root));
}

RuntimeCheckpoint RuntimeCheckpoint::from_json(const JsonValue& json) {
  const std::string& schema = json.at("schema").as_string();
  require(schema == kCheckpointSchema ||
              schema == "gridctl.runtime.checkpoint/2" ||
              schema == "gridctl.runtime.checkpoint/1",
          "checkpoint: unsupported schema (expected "
          "gridctl.runtime.checkpoint/3, /2 or /1)");
  RuntimeCheckpoint checkpoint;

  const JsonValue& progress = json.at("progress");
  checkpoint.next_step = as_u64(progress.at("next_step"));
  checkpoint.price_ticks_consumed = as_u64(progress.at("price_ticks_consumed"));
  checkpoint.workload_ticks_consumed =
      as_u64(progress.at("workload_ticks_consumed"));
  checkpoint.degrade_pending = progress.at("degrade_pending").as_bool();

  const JsonValue& held = json.at("held");
  checkpoint.held_prices = doubles_from_json(held.at("prices"));
  checkpoint.held_price_time_s = held.at("price_time_s").as_number();
  checkpoint.held_demands = doubles_from_json(held.at("demands"));
  checkpoint.held_demand_time_s = held.at("demand_time_s").as_number();
  checkpoint.last_power_w = doubles_from_json(held.at("last_power_w"));

  checkpoint.controller = controller_from_json(json.at("controller"));

  for (const auto& state : json.at("fleet").as_array()) {
    RuntimeCheckpoint::IdcState idc;
    idc.servers_on = static_cast<std::size_t>(as_u64(state.at("servers_on")));
    idc.load_rps = state.at("load_rps").as_number();
    idc.energy_joules = state.at("energy_joules").as_number();
    idc.cost_dollars = state.at("cost_dollars").as_number();
    idc.overload_seconds = state.at("overload_seconds").as_number();
    checkpoint.fleet.push_back(idc);
  }
  checkpoint.queue_backlogs_req =
      doubles_from_json(json.at("queue_backlogs_req"));

  checkpoint.trace = trace_from_json(json.at("trace"));
  checkpoint.telemetry = telemetry_counters_from_json(json.at("telemetry"));
  checkpoint.stats = stats_from_json(json.at("stats"));
  if (json.has("admission")) checkpoint.admission = json.at("admission");
  return checkpoint;
}

void RuntimeCheckpoint::validate_for(const core::Scenario& scenario) const {
  const std::size_t n = scenario.num_idcs();
  const std::size_t c = scenario.num_portals();
  const std::size_t steps = scenario.num_steps();
  require(next_step <= steps, "checkpoint: next_step beyond the scenario");
  require(price_ticks_consumed <= steps && workload_ticks_consumed <= steps,
          "checkpoint: feed cursor beyond the scenario");
  require(held_prices.size() == n, "checkpoint: held price width mismatch");
  require(held_demands.size() == c, "checkpoint: held demand width mismatch");
  require(last_power_w.size() == n, "checkpoint: last_power width mismatch");
  require(fleet.size() == n, "checkpoint: fleet size mismatch");
  require(queue_backlogs_req.size() == n,
          "checkpoint: queue backlog size mismatch");
  require(controller.allocation.size() == n * c,
          "checkpoint: controller allocation size mismatch");
  require(controller.servers.size() == n,
          "checkpoint: controller server vector size mismatch");
  // Row 0 is the warm-start record; one more row per executed step.
  require(trace.time_s.size() == next_step + 1,
          "checkpoint: trace length inconsistent with next_step");
  require(trace.power_w.size() == n && trace.portal_rps.size() == c,
          "checkpoint: trace shape mismatch");
}

void save_checkpoint(const std::string& path,
                     const RuntimeCheckpoint& checkpoint) {
  write_json_file(path, checkpoint.to_json(), /*indent=*/1);
}

RuntimeCheckpoint load_checkpoint(const std::string& path) {
  return RuntimeCheckpoint::from_json(parse_json_file(path));
}

}  // namespace gridctl::runtime
