#include "runtime/control_runtime.hpp"

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "runtime/bounded_queue.hpp"
#include "util/error.hpp"

namespace gridctl::runtime {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ControlRuntime::ControlRuntime(core::Scenario scenario, RuntimeOptions options)
    : clock_(options.acceleration),
      session_(std::move(scenario), std::move(options), &clock_) {}

ControlRuntime::ControlRuntime(core::Scenario scenario, RuntimeOptions options,
                               const RuntimeCheckpoint& checkpoint)
    : clock_(options.acceleration),
      session_(std::move(scenario), std::move(options), checkpoint, &clock_) {}

ControlRuntime::~ControlRuntime() = default;

RuntimeResult ControlRuntime::run() {
  require(!ran_, "ControlRuntime::run: a runtime instance runs once");
  ran_ = true;
  const auto run_begin = clock_type::now();

  const std::uint64_t steps = session_.scenario().num_steps();
  const std::uint64_t stop_at = session_.stop_step();
  if (session_.next_step() >= stop_at) {
    return session_.finish(session_.next_step() >= steps,
                           seconds_between(run_begin, clock_type::now()));
  }

  clock_.start(session_.resume_event_time_s());

  BoundedQueue<Event> queue(session_.options().queue_capacity);

  // Pump: poll the session's merged event stream, pacing each event's
  // arrival against the clock before handing it to the control thread.
  std::thread pump([this, &queue] {
    while (auto event = session_.poll()) {
      clock_.wait_until(event->tick.arrival_s);
      if (!queue.push(std::move(*event))) break;  // consumer closed
    }
    queue.close();
  });

  bool completed = false;
  std::exception_ptr error;
  try {
    while (auto event = queue.pop()) {
      session_.record_queue_depth(queue.size() + 1);
      session_.apply(*event);
      if (session_.next_step() >= stop_at || stop_requested_.load()) break;
    }
    completed = session_.next_step() >= steps;
  } catch (...) {
    error = std::current_exception();
  }
  queue.close();
  pump.join();
  if (error) std::rethrow_exception(error);

  return session_.finish(completed,
                         seconds_between(run_begin, clock_type::now()));
}

}  // namespace gridctl::runtime
