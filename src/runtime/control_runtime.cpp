#include "runtime/control_runtime.hpp"

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "runtime/bounded_queue.hpp"
#include "util/error.hpp"

namespace gridctl::runtime {

namespace {

// Telemetry wall timing only; control decisions never read it.
using clock_type = std::chrono::steady_clock;  // lint: nondet-ok

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ControlRuntime::ControlRuntime(core::Scenario scenario, RuntimeOptions options)
    : clock_(options.acceleration),
      session_(std::move(scenario), std::move(options), &clock_) {}

ControlRuntime::ControlRuntime(core::Scenario scenario, RuntimeOptions options,
                               const RuntimeCheckpoint& checkpoint)
    : clock_(options.acceleration),
      session_(std::move(scenario), std::move(options), checkpoint, &clock_) {}

ControlRuntime::~ControlRuntime() = default;

RuntimeResult ControlRuntime::run() {
  require(!ran_, "ControlRuntime::run: a runtime instance runs once");
  ran_ = true;
  const auto run_begin = clock_type::now();

  const std::uint64_t steps = session_.scenario().num_steps();
  const std::uint64_t stop_at = session_.stop_step();
  {
    // Single-threaded preamble: this thread briefly owns the whole
    // session (the pump does not exist yet).
    util::RoleGuard stream(session_.stream_role());
    util::RoleGuard control(session_.control_role());
    if (session_.next_step() >= stop_at) {
      return session_.finish(session_.next_step() >= steps,
                             seconds_between(run_begin, clock_type::now()));
    }
    clock_.start(session_.resume_event_time_s());
  }

  BoundedQueue<Event> queue(session_.options().queue_capacity);

  // Pump: poll the session's merged event stream, pacing each event's
  // arrival against the clock before handing it to the control thread.
  // The pump thread owns the stream half for its whole lifetime;
  // thread creation/join provides the memory fence the role annotates.
  std::thread pump([this, &queue] {
    util::RoleGuard stream(session_.stream_role());
    while (auto event = session_.poll()) {
      clock_.wait_until(event->tick.arrival_s);
      if (!queue.push(std::move(*event))) break;  // consumer closed
    }
    queue.close();
  });

  bool completed = false;
  std::exception_ptr error;
  {
    // The calling thread owns the control half while the pump runs.
    util::RoleGuard control(session_.control_role());
    try {
      while (auto event = queue.pop()) {
        session_.record_queue_depth(queue.size() + 1);
        session_.apply(*event);
        if (session_.next_step() >= stop_at || stop_requested_.load()) break;
      }
      completed = session_.next_step() >= steps;
    } catch (...) {
      error = std::current_exception();
    }
  }
  queue.close();
  pump.join();
  if (error) std::rethrow_exception(error);

  // Post-join: sole owner again.
  util::RoleGuard control(session_.control_role());
  return session_.finish(completed,
                         seconds_between(run_begin, clock_type::now()));
}

}  // namespace gridctl::runtime
