// Counters the online runtime keeps about itself, alongside the
// controller-level `engine::RunTelemetry`: feed health (ticks seen,
// dropped, late, staleness at the control boundary) and event-clock
// health (deadline misses, degraded periods, pacing lag).
//
// Everything here is owned by the control thread; the checkpoint codec
// (runtime/checkpoint.hpp) persists the deterministic counters so a
// restored runtime's final report matches an uninterrupted run.
#pragma once

#include <cstdint>
#include <limits>

#include "engine/telemetry.hpp"

namespace gridctl::runtime {

struct RuntimeStats {
  // Feed accounting.
  std::uint64_t price_ticks = 0;      // applied price updates
  std::uint64_t workload_ticks = 0;   // applied workload updates
  std::uint64_t dropped_ticks = 0;    // fault-injected losses, both feeds
  std::uint64_t late_ticks = 0;       // arrived after their nominal time
  // Control periods that ran on a feed value older than one period
  // (the degradation a dropped or late tick actually causes).
  std::uint64_t stale_price_steps = 0;
  std::uint64_t stale_workload_steps = 0;

  // Event-clock accounting. `deadline_s` is the per-step wall budget in
  // force (infinity = free run, no deadline).
  double deadline_s = std::numeric_limits<double>::infinity();
  std::uint64_t deadline_misses = 0;  // steps whose wall time exceeded it
  std::uint64_t degraded_steps = 0;   // periods served by the no-QP hold
  double max_lag_s = 0.0;             // worst pacing lag at a step start
  std::size_t max_queue_depth = 0;    // event-queue high-water mark

  // Wall time per control step (decide + plant + record), microseconds —
  // the same fixed-storage histogram the batch telemetry uses.
  engine::StepTimingHistogram step_wall_hist;

  // JSON view (schema in docs/ARCHITECTURE.md).
  JsonValue to_json() const;
};

}  // namespace gridctl::runtime
