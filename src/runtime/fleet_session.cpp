#include "runtime/fleet_session.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "admission/plan.hpp"
#include "core/policies.hpp"
#include "util/error.hpp"

namespace gridctl::runtime {

namespace {

// Telemetry step timing only (histograms, warm-start accounting);
// control decisions never read it.
using clock_type = std::chrono::steady_clock;  // lint: nondet-ok

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

FleetSession::FleetSession(core::Scenario scenario, RuntimeOptions options,
                           const EventClock* clock)
    : scenario_(std::move(scenario)),
      options_(std::move(options)),
      clock_(clock),
      fleet_(scenario_.idcs),
      timer_(scenario_.start_time_s.value(), scenario_.ts_s.value(),
             scenario_.num_steps()) {
  init_common();
  if (options_.warm_start) warm_start();
  // Row 0: the pre-transition operating point, recorded exactly as the
  // batch simulation does. These bootstrap reads go straight to the
  // models — the feeds start delivering from the window start.
  held_demands_ = scenario_.workload->rates(scenario_.start_time_s.value());
  held_demand_time_s_ = scenario_.start_time_s.value();
  held_prices_.resize(scenario_.num_idcs());
  for (std::size_t j = 0; j < scenario_.num_idcs(); ++j) {
    held_prices_[j] = scenario_.prices
                          ->price(scenario_.idcs[j].region,
                                  scenario_.start_time_s,
                                  units::Watts{last_power_[j]})
                          .value();
  }
  held_price_time_s_ = scenario_.start_time_s.value();
  core::record_step(trace_, fleet_, queues_, units::Seconds::zero(),
                    units::typed_vector<units::PricePerMwh>(held_prices_),
                    units::typed_vector<units::Rps>(held_demands_),
                    /*grid_power_w=*/{}, controller_->battery_soc_j());
}

FleetSession::FleetSession(core::Scenario scenario, RuntimeOptions options,
                           const RuntimeCheckpoint& checkpoint,
                           const EventClock* clock)
    : scenario_(std::move(scenario)),
      options_(std::move(options)),
      clock_(clock),
      fleet_(scenario_.idcs),
      timer_(scenario_.start_time_s.value(), scenario_.ts_s.value(),
             scenario_.num_steps()) {
  init_common();
  checkpoint.validate_for(scenario_);
  // A checkpoint taken behind an admission layer must resume behind the
  // *same* layer: the routed view's derived state (routing epochs,
  // portal map, token-bucket levels) has to match exactly, or the
  // restored demand stream would silently diverge.
  if (const auto* routed = dynamic_cast<const admission::RoutedWorkload*>(
          scenario_.workload.get())) {
    require(!checkpoint.admission.is_null(),
            "FleetSession: checkpoint has no admission state but the "
            "scenario workload is a routed admission view");
    routed->validate_checkpoint_state(checkpoint.admission,
                                      checkpoint.next_step);
  }
  restore_from(checkpoint);
}

void FleetSession::init_common() {
  scenario_.validate();
  require(options_.queue_capacity > 0,
          "FleetSession: queue_capacity must be positive");
  require(options_.deadline_s >= 0.0, "FleetSession: deadline_s must be >= 0");

  const std::size_t n = scenario_.num_idcs();
  const std::size_t c = scenario_.num_portals();

  controller_ = std::make_unique<core::CostController>(
      core::controller_config_from(scenario_, options_.factor_cache));
  queues_.assign(n, datacenter::FluidQueue{});
  last_power_.assign(n, 0.0);

  std::vector<std::size_t> regions(n);
  for (std::size_t j = 0; j < n; ++j) regions[j] = scenario_.idcs[j].region;
  const std::uint64_t steps = scenario_.num_steps();
  price_feed_ = std::make_unique<PriceFeed>(
      scenario_.prices, std::move(regions),
      TickStream(scenario_.start_time_s.value(), scenario_.ts_s.value(),
                 steps, options_.price_faults));
  workload_feed_ = std::make_unique<WorkloadFeed>(
      scenario_.workload,
      TickStream(scenario_.start_time_s.value(), scenario_.ts_s.value(),
                 steps, options_.workload_faults));

  trace_.policy = "control";
  trace_.ts_s = scenario_.ts_s.value();
  trace_.power_w.assign(n, {});
  trace_.servers_on.assign(n, {});
  trace_.idc_load_rps.assign(n, {});
  trace_.price_per_mwh.assign(n, {});
  trace_.latency_s.assign(n, {});
  trace_.backlog_req.assign(n, {});
  trace_.transient_delay_s.assign(n, {});
  trace_.portal_rps.assign(c, {});
  for (const auto& idc : scenario_.idcs) {
    if (idc.battery.present()) any_battery_ = true;
  }
  if (any_battery_) {
    trace_.grid_power_w.assign(n, {});
    trace_.battery_soc_j.assign(n, {});
  }

  stats_.deadline_s =
      options_.deadline_s > 0.0
          ? options_.deadline_s
          : (clock_ ? clock_->wall_budget_s(scenario_.ts_s.value())
                    : std::numeric_limits<double>::infinity());
}

void FleetSession::warm_start() {
  const auto begin = clock_type::now();
  const units::Seconds t_prev = std::max(
      units::Seconds::zero(), scenario_.start_time_s - units::Seconds{3600.0});
  core::OptimalPolicy seed(scenario_.idcs, scenario_.num_portals(),
                           scenario_.controller.cost_basis);
  core::PolicyContext context;
  context.time_s = t_prev;
  context.prices.resize(scenario_.num_idcs(), units::PricePerMwh::zero());
  for (std::size_t j = 0; j < scenario_.num_idcs(); ++j) {
    context.prices[j] = scenario_.prices->price(
        scenario_.idcs[j].region, t_prev, units::Watts{last_power_[j]});
  }
  context.portal_demands = units::typed_vector<units::Rps>(
      scenario_.workload->rates(scenario_.start_time_s.value()));
  const auto initial = seed.decide(context);
  fleet_.set_operating_point(initial.allocation, initial.servers);
  controller_->reset_to(initial.allocation, initial.servers);
  last_power_ = units::raw_vector(fleet_.power_by_idc_w());
  telemetry_.warm_start_s = seconds_between(begin, clock_type::now());
}

void FleetSession::restore_from(const RuntimeCheckpoint& checkpoint) {
  controller_->restore(checkpoint.controller);
  for (std::size_t j = 0; j < fleet_.size(); ++j) {
    const auto& idc = checkpoint.fleet[j];
    fleet_.idc(j).restore_state(idc.servers_on, units::Rps{idc.load_rps},
                                units::Joules{idc.energy_joules},
                                units::Dollars{idc.cost_dollars},
                                units::Seconds{idc.overload_seconds});
    queues_[j].restore(checkpoint.queue_backlogs_req[j]);
  }
  held_prices_ = checkpoint.held_prices;
  held_price_time_s_ = checkpoint.held_price_time_s;
  held_demands_ = checkpoint.held_demands;
  held_demand_time_s_ = checkpoint.held_demand_time_s;
  last_power_ = checkpoint.last_power_w;
  next_step_ = checkpoint.next_step;
  price_ticks_consumed_ = checkpoint.price_ticks_consumed;
  workload_ticks_consumed_ = checkpoint.workload_ticks_consumed;
  degrade_pending_ = checkpoint.degrade_pending;
  trace_ = checkpoint.trace;
  telemetry_ = checkpoint.telemetry;
  stats_ = checkpoint.stats;
  // The deadline is derived from *this* process's options, not restored
  // wall-clock history.
  stats_.deadline_s =
      options_.deadline_s > 0.0
          ? options_.deadline_s
          : (clock_ ? clock_->wall_budget_s(scenario_.ts_s.value())
                    : std::numeric_limits<double>::infinity());

  price_feed_->stream().reset(price_ticks_consumed_);
  workload_feed_->stream().reset(workload_ticks_consumed_);
  timer_.reset(next_step_);
}

std::uint64_t FleetSession::stop_step() const {
  const std::uint64_t steps = scenario_.num_steps();
  return options_.stop_after_step == 0
             ? steps
             : std::min<std::uint64_t>(steps, options_.stop_after_step);
}

double FleetSession::resume_event_time_s() const {
  return (scenario_.start_time_s +
          static_cast<double>(next_step_) * scenario_.ts_s)
      .value();
}

std::optional<Event> FleetSession::poll() {
  // Merge the three FIFO-monotone streams on head arrival time.
  // Iteration order price < workload < timer breaks exact-arrival ties,
  // so a feed tick nominal at t_k lands before step k's timer event.
  TickStream* streams[3] = {&price_feed_->stream(), &workload_feed_->stream(),
                            &timer_};
  int best = -1;
  double best_arrival = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto arrival = streams[i]->peek_arrival();
    if (arrival && (best < 0 || *arrival < best_arrival)) {
      best = i;
      best_arrival = *arrival;
    }
  }
  if (best < 0) return std::nullopt;  // every stream exhausted
  return Event{static_cast<EventKind>(best), *streams[best]->next()};
}

void FleetSession::apply(const Event& event) {
  const Tick& tick = event.tick;
  switch (event.kind) {
    case EventKind::kPrice:
      ++price_ticks_consumed_;
      if (tick.dropped) {
        ++stats_.dropped_ticks;
        break;
      }
      if (tick.arrival_s > tick.time_s + 1e-9) ++stats_.late_ticks;
      held_prices_ = price_feed_->values(tick.time_s, last_power_);
      held_price_time_s_ = tick.time_s;
      ++stats_.price_ticks;
      break;
    case EventKind::kWorkload:
      ++workload_ticks_consumed_;
      if (tick.dropped) {
        ++stats_.dropped_ticks;
        break;
      }
      if (tick.arrival_s > tick.time_s + 1e-9) ++stats_.late_ticks;
      held_demands_ = workload_feed_->values(tick.time_s);
      held_demand_time_s_ = tick.time_s;
      ++stats_.workload_ticks;
      break;
    case EventKind::kTimer:
      execute_step(tick.sequence);
      break;
  }
}

void FleetSession::record_queue_depth(std::size_t depth) {
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
}

double FleetSession::lag_s(double event_time_s) const {
  return clock_ ? clock_->lag_s(event_time_s) : 0.0;
}

void FleetSession::execute_step(std::uint64_t step) {
  const double ts = scenario_.ts_s.value();
  const double t =
      scenario_.start_time_s.value() + static_cast<double>(step) * ts;
  const std::size_t n = scenario_.num_idcs();

  // Feed health at the control boundary: the step is about to run on
  // values older than its own sampling instant.
  if (held_price_time_s_ < t - 1e-9) ++stats_.stale_price_steps;
  if (held_demand_time_s_ < t - 1e-9) ++stats_.stale_workload_steps;
  stats_.max_lag_s = std::max(stats_.max_lag_s, lag_s(t));

  const auto step_begin = clock_type::now();
  const bool degraded = degrade_pending_ && options_.degrade_on_deadline_miss;
  degrade_pending_ = false;
  // The held feed payloads are raw buffers (the checkpoint schema pins
  // them); type them once per step at the controller boundary.
  const auto prices = units::typed_vector<units::PricePerMwh>(held_prices_);
  const auto demands = units::typed_vector<units::Rps>(held_demands_);
  const core::CostController::Decision decision =
      degraded ? controller_->step_degraded(prices, demands)
               : controller_->step(prices, demands);
  if (degraded) ++stats_.degraded_steps;
  const auto decide_end = clock_type::now();

  fleet_.set_operating_point(decision.allocation, decision.servers);
  fleet_.advance(scenario_.ts_s, prices);
  last_power_ = units::raw_vector(fleet_.power_by_idc_w());
  std::vector<double> grid_w;
  if (any_battery_) {
    // Metered draw = realized IT power minus the battery dispatch,
    // clamped at zero; the price feed sees the metered series.
    grid_w.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double dispatch =
          decision.battery_w.empty() ? 0.0 : decision.battery_w[j];
      grid_w[j] = std::max(0.0, last_power_[j] - dispatch);
      last_power_[j] = grid_w[j];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto& idc = fleet_.idc(j);
    queues_[j].step(idc.assigned_load().value(),
                    static_cast<double>(idc.servers_on()) *
                        idc.config().power.service_rate.value(),
                    ts);
  }
  const auto plant_end = clock_type::now();

  core::record_step(trace_, fleet_, queues_,
                    units::Seconds{t - scenario_.start_time_s.value() + ts},
                    prices, demands, grid_w, decision.battery_soc_j);
  const auto step_end = clock_type::now();

  telemetry_.policy_s += seconds_between(step_begin, decide_end);
  telemetry_.plant_s += seconds_between(decide_end, plant_end);
  telemetry_.record_s += seconds_between(plant_end, step_end);
  const double step_wall_s = seconds_between(step_begin, step_end);
  telemetry_.step_hist.record(step_wall_s * 1e6);
  stats_.step_wall_hist.record(step_wall_s * 1e6);
  telemetry_.record_solver(decision.mpc_status, decision.mpc_iterations,
                           decision.mpc_warm_started, decision.fallback_tier);
  telemetry_.record_invariants(decision.invariants);

  if (step_wall_s > stats_.deadline_s) {
    ++stats_.deadline_misses;
    degrade_pending_ = true;  // acted on only if degrade_on_deadline_miss
  }
  ++next_step_;

  if (options_.progress_every > 0 && options_.on_progress &&
      next_step_ % options_.progress_every == 0) {
    Progress progress;
    progress.step = next_step_;
    progress.total_steps = scenario_.num_steps();
    progress.event_time_s = t + ts;
    progress.total_power_w = trace_.total_power_w.back();
    progress.cumulative_cost = trace_.cumulative_cost.back();
    progress.lag_s = lag_s(t + ts);
    progress.deadline_misses = stats_.deadline_misses;
    progress.degraded_steps = stats_.degraded_steps;
    progress.dropped_ticks = stats_.dropped_ticks;
    progress.invariant_violations = telemetry_.invariants.total();
    options_.on_progress(progress);
  }
}

RuntimeResult FleetSession::finish(bool completed, double wall_s) {
  telemetry_.steps = static_cast<std::size_t>(next_step_);
  telemetry_.total_s += wall_s;

  RuntimeResult result;
  result.summary =
      core::summarize_trace(scenario_, trace_, fleet_, trace_.policy);
  result.telemetry = telemetry_;
  result.stats = stats_;
  if (options_.record_trace) {
    result.trace = std::make_shared<core::SimulationTrace>(trace_);
  }
  result.completed = completed;
  return result;
}

RuntimeCheckpoint FleetSession::checkpoint() const {
  RuntimeCheckpoint cp;
  cp.next_step = next_step_;
  cp.price_ticks_consumed = price_ticks_consumed_;
  cp.workload_ticks_consumed = workload_ticks_consumed_;
  cp.held_prices = held_prices_;
  cp.held_price_time_s = held_price_time_s_;
  cp.held_demands = held_demands_;
  cp.held_demand_time_s = held_demand_time_s_;
  cp.last_power_w = last_power_;
  cp.degrade_pending = degrade_pending_;
  cp.controller = controller_->snapshot();
  cp.fleet.resize(fleet_.size());
  cp.queue_backlogs_req.resize(fleet_.size());
  for (std::size_t j = 0; j < fleet_.size(); ++j) {
    const auto& idc = fleet_.idc(j);
    cp.fleet[j] = {idc.servers_on(), idc.assigned_load().value(),
                   idc.energy_joules().value(), idc.cost_dollars().value(),
                   idc.overload_seconds().value()};
    cp.queue_backlogs_req[j] = queues_[j].backlog_req();
  }
  cp.trace = trace_;
  cp.telemetry = telemetry_;
  cp.stats = stats_;
  if (const auto* routed = dynamic_cast<const admission::RoutedWorkload*>(
          scenario_.workload.get())) {
    cp.admission = routed->checkpoint_state(next_step_);
  }
  return cp;
}

}  // namespace gridctl::runtime
