// Bounded MPSC/SPSC handoff queue for the online control runtime.
//
// The feed pump produces timestamped events faster than the control
// loop can consume them when the event clock runs at high acceleration;
// the bound turns that mismatch into backpressure (the pump blocks)
// instead of unbounded memory growth. Close() drains cleanly: pending
// items remain poppable, further pushes are rejected, and a pop on an
// empty closed queue returns nullopt — the consumer's termination
// signal.
//
// Locking contract (checked by Clang Thread Safety Analysis): every
// member behind `mutex_` is GUARDED_BY it, and the condition waits
// declare the mutex in their signature, so a new code path that
// touches `items_` or `closed_` without the lock fails to compile on
// the thread-safety CI leg.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace gridctl::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  // Blocks while the queue is full. Returns false when the queue was
  // closed (the item is dropped — the consumer is gone).
  bool push(T item) {
    util::MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    util::MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    util::MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    util::MutexLock lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ GRIDCTL_GUARDED_BY(mutex_);
  bool closed_ GRIDCTL_GUARDED_BY(mutex_) = false;
};

}  // namespace gridctl::runtime
