// Bounded MPSC/SPSC handoff queue for the online control runtime.
//
// The feed pump produces timestamped events faster than the control
// loop can consume them when the event clock runs at high acceleration;
// the bound turns that mismatch into backpressure (the pump blocks)
// instead of unbounded memory growth. Close() drains cleanly: pending
// items remain poppable, further pushes are rejected, and a pop on an
// empty closed queue returns nullopt — the consumer's termination
// signal.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gridctl::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  // Blocks while the queue is full. Returns false when the queue was
  // closed (the item is dropped — the consumer is gone).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gridctl::runtime
