// Event clock: maps event time (scenario seconds) onto wall time at a
// configurable acceleration, so a recorded trace replays in real time
// (acceleration = 1), at 10000× wall speed, or as fast as the CPU
// allows (acceleration = 0, "free run" — every wait returns
// immediately).
//
// The clock only *paces*; it never decides. Control outcomes depend on
// event-time ordering alone, which is deterministic, so two runs at
// different accelerations produce identical results — only their wall
// clocks differ. Lag (how far behind the pacing schedule a consumer is)
// is the runtime's deadline signal.
//
// lint: nondet-ok-file — this file IS the wall-clock boundary; every
// steady_clock read in the runtime funnels through it.
#pragma once

#include <chrono>

namespace gridctl::runtime {

class EventClock {
 public:
  // `acceleration` event-seconds pass per wall second; 0 = free run.
  explicit EventClock(double acceleration);

  double acceleration() const { return acceleration_; }
  bool paced() const { return acceleration_ > 0.0; }

  // Anchor `event_time_s` to the current wall instant.
  void start(double event_time_s);

  // Block until the wall instant corresponding to `event_time_s`
  // (no-op when free-running or already past it).
  void wait_until(double event_time_s) const;

  // Wall seconds by which the caller trails `event_time_s`'s scheduled
  // instant (negative = early, 0 when free-running).
  double lag_s(double event_time_s) const;

  // Wall-clock budget for one event-time period at this acceleration
  // (infinity when free-running: an unpaced run has no deadline).
  double wall_budget_s(double period_event_s) const;

 private:
  std::chrono::steady_clock::time_point wall_for(double event_time_s) const;

  double acceleration_;
  double origin_event_s_ = 0.0;
  std::chrono::steady_clock::time_point origin_wall_{};
};

}  // namespace gridctl::runtime
