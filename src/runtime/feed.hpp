// The feed layer of the online control runtime: replayable, timestamped
// tick streams adapting the batch price/workload models into the event
// world.
//
// A `TickStream` is the schedule: ticks at a fixed period, each with a
// nominal time (what the payload describes) and an arrival time (when
// the consumer may see it). Fault injection — dropped, late and
// jittered ticks — is *stateless*: every perturbation is a pure hash of
// (seed, sequence), so `reset(k)` rewinds or fast-forwards exactly and
// a checkpointed stream resumes bit-identically with no RNG state to
// persist.
//
// Payloads are resolved at consume time, not enqueue time: a
// demand-responsive price model (paper eq. 9) must see the *freshest*
// power feedback, exactly as the batch simulation queries it, so
// `PriceFeed`/`WorkloadFeed` carry the model and the runtime asks for
// `values(...)` when the tick is applied. A dropped tick therefore
// means the consumer keeps operating on stale values — the realistic
// failure, and the one the degradation path must absorb.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "market/price_model.hpp"
#include "workload/generators.hpp"

namespace gridctl::runtime {

// Deterministic per-tick fault model. All probabilities are evaluated
// by counter hashing, never by a stateful RNG.
struct FaultSpec {
  double drop_probability = 0.0;  // tick never arrives
  double late_probability = 0.0;  // tick arrives up to max_lateness_s late
  double max_lateness_s = 0.0;
  double jitter_s = 0.0;          // every tick arrives up to this much late
  std::uint64_t seed = 0;

  bool any() const {
    return drop_probability > 0.0 || late_probability > 0.0 || jitter_s > 0.0;
  }
  void validate() const;
};

struct Tick {
  std::uint64_t sequence = 0;
  double time_s = 0.0;     // nominal event time the payload describes
  double arrival_s = 0.0;  // event time at which the tick becomes visible
  bool dropped = false;    // fault-injected loss; the payload never arrives
};

// Fixed-period tick schedule with deterministic fault injection.
// Arrival times are FIFO-monotone within the stream (a delayed tick
// also delays everything behind it, like a real ordered transport), so
// a k-way merge on per-stream head arrivals yields a globally
// arrival-ordered event sequence.
class TickStream {
 public:
  TickStream(double start_s, double period_s, std::uint64_t count,
             FaultSpec faults = {});

  // The tick at `sequence`, independent of the cursor (pure function).
  Tick at(std::uint64_t sequence) const;

  // Next tick in sequence order, or nullopt when exhausted.
  std::optional<Tick> next();
  // Arrival time of the next tick without consuming it.
  std::optional<double> peek_arrival() const;

  void reset(std::uint64_t sequence) { cursor_ = sequence; }
  std::uint64_t cursor() const { return cursor_; }
  std::uint64_t count() const { return count_; }
  double period_s() const { return period_s_; }

 private:
  double raw_arrival(std::uint64_t sequence) const;

  double start_s_;
  double period_s_;
  std::uint64_t count_;
  FaultSpec faults_;
  std::uint64_t cursor_ = 0;
  std::uint64_t window_;  // FIFO-monotone running-max look-back
};

// Common half of a concrete feed: a name for telemetry and the tick
// schedule driving it.
class Feed {
 public:
  Feed(std::string name, TickStream stream)
      : name_(std::move(name)), stream_(std::move(stream)) {}
  virtual ~Feed() = default;

  const std::string& name() const { return name_; }
  TickStream& stream() { return stream_; }
  const TickStream& stream() const { return stream_; }
  // Number of values one tick carries.
  virtual std::size_t width() const = 0;

 private:
  std::string name_;
  TickStream stream_;
};

// Streams per-IDC regional prices from any market::PriceModel
// (trace playback or the stochastic bid market). `power_feedback_w` is
// the latest per-IDC power draw — demand-responsive models (eq. 9) see
// it, exogenous models ignore it.
class PriceFeed : public Feed {
 public:
  PriceFeed(std::shared_ptr<const market::PriceModel> model,
            std::vector<std::size_t> idc_regions, TickStream stream);

  std::size_t width() const override { return regions_.size(); }
  std::vector<double> values(double time_s,
                             const std::vector<double>& power_feedback_w) const;

 private:
  std::shared_ptr<const market::PriceModel> model_;
  std::vector<std::size_t> regions_;  // region index per IDC
};

// Streams per-portal offered load from any workload::WorkloadSource.
class WorkloadFeed : public Feed {
 public:
  WorkloadFeed(std::shared_ptr<const workload::WorkloadSource> source,
               TickStream stream);

  std::size_t width() const override { return source_->num_portals(); }
  std::vector<double> values(double time_s) const {
    return source_->rates(time_s);
  }

 private:
  std::shared_ptr<const workload::WorkloadSource> source_;
};

}  // namespace gridctl::runtime
