// FleetSession: the pump/step core of the online control runtime,
// factored out of ControlRuntime so it can be driven by *any* execution
// engine — the classic two-thread single-fleet ControlRuntime, or the
// multi-fleet ControlPlane worker pool (src/controlplane) that
// multiplexes hundreds of sessions over a fixed set of workers.
//
// A session owns one fleet's complete control state — scenario,
// controller, plant, feeds, held values, trace, telemetry — but no
// threads, no pacing clock and no event queue. It exposes two halves:
//
//  * the stream half: `poll()` merges the price feed, the workload feed
//    and the control-period timer into the next globally arrival-ordered
//    event (each TickStream is FIFO-monotone, so a k-way merge on head
//    arrivals suffices);
//  * the control half: `apply()` consumes one event in order — feed
//    ticks refresh the held price/demand values (payloads resolved at
//    consume time so demand-responsive price models see the freshest
//    power feedback), and every timer event executes one control period
//    exactly as the batch simulation does.
//
// The two halves touch disjoint state (streams vs. everything else), so
// a driver may run them on different threads — ControlRuntime's pump
// thread polls while its control thread applies — or call both from one
// thread, as the control plane's workers do. Determinism is inherited
// from the feed layer: event ordering depends on event time only, so
// however a session is scheduled, its trajectory is bit-identical to a
// solo free-running ControlRuntime over the same scenario and options.
//
// The split is a compile-checked contract: two util::ThreadRole
// capabilities (stream_role / control_role) partition the session's
// members, `poll()` requires the stream role and `apply()` the control
// role, and a driver declares which thread owns which half with a
// scoped util::RoleGuard. Under Clang's Thread Safety Analysis a new
// code path that reaches across the split — say, apply() touching the
// tick streams — fails to compile. The roles carry no runtime state;
// the memory ordering that makes the handoff real comes from the
// driver (thread creation/join in ControlRuntime, the worker deques'
// mutex handoff in ControlPlane).
//
// Checkpoint/restore: `checkpoint()` captures the full state after the
// last applied step; a session constructed from a checkpoint resumes
// bit-identically (see tests/runtime and tests/controlplane).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost_controller.hpp"
#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "datacenter/fleet.hpp"
#include "datacenter/fluid_queue.hpp"
#include "engine/telemetry.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/event_clock.hpp"
#include "runtime/feed.hpp"
#include "runtime/stats.hpp"
#include "solvers/qp_condensed.hpp"
#include "util/thread_annotations.hpp"

namespace gridctl::runtime {

// Live progress snapshot, delivered to RuntimeOptions::on_progress.
struct Progress {
  std::uint64_t step = 0;        // control steps executed so far
  std::uint64_t total_steps = 0;
  double event_time_s = 0.0;     // end of the last executed period
  double total_power_w = 0.0;
  double cumulative_cost = 0.0;
  double lag_s = 0.0;            // pacing lag at the last step (0 free-run)
  std::uint64_t deadline_misses = 0;
  std::uint64_t degraded_steps = 0;
  std::uint64_t dropped_ticks = 0;
  std::uint64_t invariant_violations = 0;
};

struct RuntimeOptions {
  // Event-seconds per wall second; 0 = free run (as fast as the CPU
  // allows, no pacing, no deadline). Pacing is applied by the driver
  // (ControlRuntime); the control plane always free-runs its fleets.
  double acceleration = 0.0;
  // Event-queue capacity between the pump and the control thread
  // (two-thread ControlRuntime only; sessions have no queue).
  std::size_t queue_capacity = 64;
  // Fault injection per feed (deterministic counter hashing; see
  // runtime/feed.hpp). Defaults: clean feeds.
  FaultSpec price_faults;
  FaultSpec workload_faults;
  // Seed controller + fleet at the pre-window converged operating point
  // (mirrors SimulationOptions::warm_start). Ignored when restoring.
  bool warm_start = true;
  // Keep the per-step trace in the result (always kept internally for
  // the summary and for checkpoints).
  bool record_trace = true;
  // Per-step wall budget in seconds; a step exceeding it counts as a
  // deadline miss. 0 = derive from the control period and acceleration
  // when paced; no deadline when free-running.
  double deadline_s = 0.0;
  // After a missed deadline, serve the *next* period with the no-QP
  // hold-last-feasible step so the loop catches up. Trades determinism
  // for liveness (wall clock then influences decisions) — off by
  // default; the miss counters are always recorded either way.
  bool degrade_on_deadline_miss = false;
  // Stop (resumably) once the absolute step index reaches this value;
  // 0 = run to the end of the scenario window.
  std::uint64_t stop_after_step = 0;
  // Invoke `on_progress` every this many control steps (0 = never).
  // Called from whichever thread applies the session's events.
  std::size_t progress_every = 0;
  std::function<void(const Progress&)> on_progress;
  // Optional process-wide cache of condensed MPC factorizations. Fleets
  // sharing a plant shape then pay the O((β2·N)³) configure cost once
  // (the control plane installs one cache across all its fleets).
  std::shared_ptr<solvers::CondensedFactorCache> factor_cache;
};

struct RuntimeResult {
  core::SimulationSummary summary;
  engine::RunTelemetry telemetry;
  RuntimeStats stats;
  // Null unless RuntimeOptions::record_trace.
  std::shared_ptr<const core::SimulationTrace> trace;
  bool completed = false;  // reached the end of the scenario window
};

// One merged feed/timer event. A feed tick carrying a nominal time
// equal to a timer tick is merged *before* that control step (the batch
// loop reads prices and workload at exactly t_k), so `poll()` breaks
// arrival ties in kind order price < workload < timer.
enum class EventKind : int { kPrice = 0, kWorkload = 1, kTimer = 2 };

struct Event {
  EventKind kind = EventKind::kTimer;
  Tick tick;
};

class FleetSession {
 public:
  // Fresh session at the start of the scenario window. `clock` is an
  // optional pacing observer (not owned, may be null): the session
  // never waits on it, but reports pacing lag and derives the default
  // step deadline through it when present.
  FleetSession(core::Scenario scenario, RuntimeOptions options,
               const EventClock* clock = nullptr);
  // Resume from a checkpoint (validated against the scenario). The
  // feeds rewind to their consumed-tick cursors — fault injection is
  // stateless, so the replay is exact.
  FleetSession(core::Scenario scenario, RuntimeOptions options,
               const RuntimeCheckpoint& checkpoint,
               const EventClock* clock = nullptr);

  FleetSession(const FleetSession&) = delete;
  FleetSession& operator=(const FleetSession&) = delete;

  // The two ownership tokens a driver acquires (via util::RoleGuard)
  // to declare which thread runs which half. The getters are annotated
  // so guards built from them are understood to hold the member roles.
  const util::ThreadRole& stream_role() const
      GRIDCTL_RETURN_CAPABILITY(stream_role_) {
    return stream_role_;
  }
  const util::ThreadRole& control_role() const
      GRIDCTL_RETURN_CAPABILITY(control_role_) {
    return control_role_;
  }

  // --- stream half (safe to call concurrently with `apply`) ---

  // Next merged event in arrival order, or nullopt when every stream is
  // exhausted. Consumes the underlying tick.
  std::optional<Event> poll() GRIDCTL_REQUIRES(stream_role_);

  // --- control half ---

  // Apply one polled event in order: feed ticks refresh held values,
  // timer ticks execute one control period.
  void apply(const Event& event) GRIDCTL_REQUIRES(control_role_);

  // Event-queue high-water mark bookkeeping for queued drivers.
  void record_queue_depth(std::size_t depth) GRIDCTL_REQUIRES(control_role_);

  // Next control step to execute (absolute step index).
  std::uint64_t next_step() const GRIDCTL_REQUIRES(control_role_) {
    return next_step_;
  }
  // First step index this run must NOT execute: stop_after_step when
  // set, else the end of the scenario window.
  std::uint64_t stop_step() const;
  // True once the session reached stop_step() (resumable) or the window
  // end (complete).
  bool done() const GRIDCTL_REQUIRES(control_role_) {
    return next_step_ >= stop_step();
  }
  // Event time of the next step boundary — the pacing clock's origin
  // when a driver starts (or resumes) this session.
  double resume_event_time_s() const GRIDCTL_REQUIRES(control_role_);

  // Package the run result. `wall_s` is the driver's measured wall time
  // for this drive (added to telemetry.total_s).
  RuntimeResult finish(bool completed, double wall_s)
      GRIDCTL_REQUIRES(control_role_);

  // Full resume state after the last applied step. Requires *both*
  // roles: nothing may be polling or applying while the snapshot is
  // taken.
  RuntimeCheckpoint checkpoint() const
      GRIDCTL_REQUIRES(stream_role_, control_role_);

  const core::Scenario& scenario() const { return scenario_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  // Construction-time helpers; the constructors (single-threaded by
  // definition) own both halves.
  void init_common() GRIDCTL_REQUIRES(stream_role_, control_role_);
  void restore_from(const RuntimeCheckpoint& checkpoint)
      GRIDCTL_REQUIRES(stream_role_, control_role_);
  void warm_start() GRIDCTL_REQUIRES(stream_role_, control_role_);
  void execute_step(std::uint64_t step) GRIDCTL_REQUIRES(control_role_);
  double lag_s(double event_time_s) const;

  // Immutable after construction; readable from either half.
  core::Scenario scenario_;
  RuntimeOptions options_;
  const EventClock* clock_;  // pacing observer; may be null (free run)

  mutable util::ThreadRole stream_role_;
  mutable util::ThreadRole control_role_;

  // Control-half plant and controller state.
  std::unique_ptr<core::CostController> controller_
      GRIDCTL_GUARDED_BY(control_role_);
  datacenter::Fleet fleet_ GRIDCTL_GUARDED_BY(control_role_);
  std::vector<datacenter::FluidQueue> queues_ GRIDCTL_GUARDED_BY(control_role_);
  // The feed objects straddle the split internally: their TickStream
  // cursors belong to the stream half (poll() consumes them), their
  // consume-time `values()` resolution to the control half. The
  // pointers themselves are set once in the constructor and never
  // reseated, so they stay unguarded.
  std::unique_ptr<PriceFeed> price_feed_;
  std::unique_ptr<WorkloadFeed> workload_feed_;
  // Stream-half state: the control-period timer poll() merges with the
  // feed streams.
  TickStream timer_ GRIDCTL_GUARDED_BY(stream_role_);

  // Control-half state.
  std::vector<double> held_prices_ GRIDCTL_GUARDED_BY(control_role_);
  double held_price_time_s_ GRIDCTL_GUARDED_BY(control_role_) = 0.0;
  std::vector<double> held_demands_ GRIDCTL_GUARDED_BY(control_role_);
  double held_demand_time_s_ GRIDCTL_GUARDED_BY(control_role_) = 0.0;
  std::vector<double> last_power_ GRIDCTL_GUARDED_BY(control_role_);
  std::uint64_t next_step_ GRIDCTL_GUARDED_BY(control_role_) = 0;
  std::uint64_t price_ticks_consumed_ GRIDCTL_GUARDED_BY(control_role_) = 0;
  std::uint64_t workload_ticks_consumed_ GRIDCTL_GUARDED_BY(control_role_) = 0;
  bool degrade_pending_ GRIDCTL_GUARDED_BY(control_role_) = false;
  // Some IDC has storage: the trace carries grid/SoC columns and the
  // price feed sees the metered (post-battery) power. Written only
  // during construction.
  bool any_battery_ = false;

  core::SimulationTrace trace_ GRIDCTL_GUARDED_BY(control_role_);
  engine::RunTelemetry telemetry_ GRIDCTL_GUARDED_BY(control_role_);
  RuntimeStats stats_ GRIDCTL_GUARDED_BY(control_role_);
};

}  // namespace gridctl::runtime
