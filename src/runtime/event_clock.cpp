// lint: nondet-ok-file — the wall-clock boundary (see event_clock.hpp).
#include "runtime/event_clock.hpp"

#include <limits>
#include <thread>

#include "util/error.hpp"

namespace gridctl::runtime {

EventClock::EventClock(double acceleration) : acceleration_(acceleration) {
  require(acceleration >= 0.0,
          "EventClock: acceleration must be >= 0 (0 = free run)");
}

void EventClock::start(double event_time_s) {
  origin_event_s_ = event_time_s;
  origin_wall_ = std::chrono::steady_clock::now();
}

std::chrono::steady_clock::time_point EventClock::wall_for(
    double event_time_s) const {
  const double wall_offset_s = (event_time_s - origin_event_s_) / acceleration_;
  return origin_wall_ + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(wall_offset_s));
}

void EventClock::wait_until(double event_time_s) const {
  if (!paced()) return;
  std::this_thread::sleep_until(wall_for(event_time_s));
}

double EventClock::lag_s(double event_time_s) const {
  if (!paced()) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_for(event_time_s))
      .count();
}

double EventClock::wall_budget_s(double period_event_s) const {
  if (!paced()) return std::numeric_limits<double>::infinity();
  return period_event_s / acceleration_;
}

}  // namespace gridctl::runtime
