// Multi-fleet control plane: drive N independent online control fleets
// (each a runtime::FleetSession — one scenario, one controller, one
// plant, its own feeds) on a fixed pool of workers instead of two
// threads per fleet.
//
// Declaration is first-class: a `FleetSpec` names the fleet, carries
// its scenario and RuntimeOptions, and optionally a checkpoint to
// resume from. The plane owns scheduling:
//
//  * Work-stealing tick scheduler. Each worker keeps a FIFO deque of
//    fleet indices; it pops its own front, steals from the back of a
//    sibling when empty, and requeues a fleet after applying at most
//    `batch_events` events (the fairness quantum — one slow fleet
//    cannot starve the rest; see the fairness test). A fleet is owned
//    by exactly one worker between queue operations, and every handoff
//    goes through a deque mutex, so session state needs no locking and
//    the schedule never changes results: event ordering inside a fleet
//    depends on event time only, so every fleet's trajectory is
//    bit-identical to a solo free-running ControlRuntime at any worker
//    count (equivalence test, including 1000 fleets).
//
//  * Amortized MPC configuration. The plane installs one shared
//    solvers::CondensedFactorCache into every fleet, so fleets with the
//    same plant shape/weights/penalties pay the O(β2³ + (β2·N)³)
//    condensed factorization once and share the capacitance-inverse
//    memory. Hit/miss counts surface in the report.
//
//  * Lock-free result aggregation. Workers write only their fleet's
//    result slot plus a few atomic counters; the final PlaneReport is
//    assembled after the pool joins and converts to a SweepReport so
//    existing analysis tooling reads a plane run unchanged.
//
//  * Per-fleet kill and resume. `request_stop(id)` halts one fleet at
//    its next step boundary (resumable, like ControlRuntime); after
//    run() returns, `checkpoint(id)` yields its full resume state,
//    which a later plane (or a solo ControlRuntime) continues
//    bit-identically.
//
// A fleet that throws (strict invariant violation, bad scenario) is
// reported through FleetResult::error — it never takes down the plane.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "admission/plan.hpp"
#include "admission/spec.hpp"
#include "engine/sweep.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fleet_session.hpp"
#include "util/thread_annotations.hpp"

namespace gridctl::controlplane {

// One fleet under plane management. `options.acceleration` is ignored:
// the plane always free-runs (pacing N fleets against one wall clock is
// a different product; deadline accounting still works via deadline_s).
struct FleetSpec {
  std::string id;  // unique label; names the fleet in the report
  core::Scenario scenario;
  runtime::RuntimeOptions options;
  // Resume point: when set, the fleet restores from this checkpoint
  // (validated against the scenario) instead of starting fresh.
  std::optional<runtime::RuntimeCheckpoint> checkpoint;
};

struct PlaneOptions {
  // Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  // Fairness quantum: max events applied to one fleet before it is
  // requeued behind its siblings.
  std::size_t batch_events = 64;
  // Shared condensed-factorization cache. Null = the plane creates one.
  // Installed into every fleet whose options don't already carry one.
  std::shared_ptr<solvers::CondensedFactorCache> factor_cache;
  // Admission front-end. When set (or when the first fleet's scenario
  // carries an enabled admission block), the plane compiles it into an
  // AdmissionPlan against the fleets' shared workload source and time
  // grid, replaces every fleet's workload with its RoutedWorkload view,
  // and embeds routing + token-bucket state in fleet checkpoints. All
  // fleets must then share one workload source and one
  // start/ts/duration window.
  std::optional<admission::AdmissionSpec> admission;
};

struct FleetResult {
  std::string id;
  bool ok = false;
  std::string error;  // what() of a thrown fleet; empty when ok
  runtime::RuntimeResult result;  // valid when ok
};

struct PlaneReport {
  std::size_t workers = 0;
  double wall_s = 0.0;  // whole-plane wall clock
  // Scheduler and cache observability.
  std::uint64_t steals = 0;  // fleets taken from a sibling's deque
  std::uint64_t factor_cache_hits = 0;
  std::uint64_t factor_cache_misses = 0;
  std::vector<FleetResult> fleets;  // FleetSpec submission order
  // Admission observability (null/zero when the plane ran without an
  // admission layer). `admission_verified` is true when every fleet
  // succeeded with traces on clean (un-faulted) feeds and the recorded
  // per-portal demand was checked against the plan — in which case
  // `admission_route_violations` counts exactly-once breaches (0 =
  // conservation held).
  std::shared_ptr<const admission::AdmissionPlan> admission;
  bool admission_verified = false;
  std::uint64_t admission_route_violations = 0;

  std::size_t failed_fleets() const;
  // Total control steps executed across all fleets (throughput metric).
  std::uint64_t total_steps() const;

  // SweepReport-compatible view: one JobResult per fleet, named by its
  // id, so sweep tooling (tools/, bench analysis) reads a plane run
  // unchanged.
  engine::SweepReport to_sweep_report() const;
  // {"sweep": <SweepReport>, "plane": {workers, steals, cache,
  //  per-fleet runtime stats}}.
  JsonValue to_json() const;
};

class ControlPlane {
 public:
  // Validates specs (non-empty unique ids, at least one fleet) and
  // installs the shared factor cache. Sessions are built lazily inside
  // the workers so construction cost (warm start) parallelizes too.
  ControlPlane(std::vector<FleetSpec> fleets, PlaneOptions options = {});
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // Drive every fleet to completion (or its stop_after_step, or a
  // requested stop) on the worker pool. Call once per plane.
  PlaneReport run();

  // Thread-safe; the fleet stops at its next step boundary and reports
  // completed = false. Returns false for an unknown id.
  bool request_stop(const std::string& id);
  // Stop every fleet (plane shutdown); run() still returns a full
  // report with every fleet resumable.
  void request_stop_all();

  // Full resume state of one fleet. Valid after run() returns; throws
  // for an unknown id or a fleet that failed before building state.
  runtime::RuntimeCheckpoint checkpoint(const std::string& id) const;

  std::size_t workers() const { return workers_; }
  const std::shared_ptr<solvers::CondensedFactorCache>& factor_cache() const {
    return factor_cache_;
  }
  // The compiled admission plan; null when the plane has no admission
  // layer.
  const std::shared_ptr<const admission::AdmissionPlan>& admission_plan()
      const {
    return admission_plan_;
  }

 private:
  struct FleetState {
    FleetSpec spec;
    std::unique_ptr<runtime::FleetSession> session;  // built in a worker
    std::atomic<bool> stop_requested{false};
    double wall_s = 0.0;  // accumulated processing wall time
    FleetResult result;
  };

  // One deque per worker; the owner pops the front, thieves take the
  // back. Guarded by a per-deque mutex: the queues are touched once per
  // `batch_events` events, so contention is negligible and the lock
  // doubles as the memory fence that hands a session between workers.
  //
  // That handoff contract is annotated explicitly: the deque itself is
  // GUARDED_BY the mutex, and the *session state* a popped index leads
  // to is guarded by the session's own stream/control roles, which the
  // worker claims (RoleGuard in process()) only between taking the
  // index off a deque and requeueing it. The mutex release on push
  // publishes the session's writes; the acquire on the next pop (by
  // whichever worker) observes them — so no session member needs a
  // lock of its own.
  struct WorkerQueue {
    util::Mutex mutex;
    std::deque<std::size_t> fleets GRIDCTL_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t worker);
  bool pop_local(std::size_t worker, std::size_t& index);
  bool steal(std::size_t worker, std::size_t& index);
  void push_back(std::size_t worker, std::size_t index);
  // Run one quantum of a fleet; returns true when the fleet is finished
  // (result slot written, remaining_ decremented).
  bool process(FleetState& fleet);

  // Compile options_.admission (or the first fleet's scenario block)
  // into admission_plan_ and install RoutedWorkload views. Called from
  // the constructor after fleet states exist. Takes the spec by value:
  // it may alias a fleet scenario's block, which this clears.
  void install_admission(admission::AdmissionSpec spec);

  PlaneOptions options_;
  std::size_t workers_ = 0;
  std::shared_ptr<solvers::CondensedFactorCache> factor_cache_;
  std::shared_ptr<const admission::AdmissionPlan> admission_plan_;
  std::vector<std::unique_ptr<FleetState>> fleets_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};
  bool ran_ = false;
  bool run_done_ = false;
};

}  // namespace gridctl::controlplane
