#include "controlplane/control_plane.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridctl::controlplane {

namespace {

// Telemetry wall timing only; scheduling and results never read it.
using clock_type = std::chrono::steady_clock;  // lint: nondet-ok

double seconds_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::size_t PlaneReport::failed_fleets() const {
  std::size_t failed = 0;
  for (const FleetResult& fleet : fleets) {
    if (!fleet.ok) ++failed;
  }
  return failed;
}

std::uint64_t PlaneReport::total_steps() const {
  std::uint64_t steps = 0;
  for (const FleetResult& fleet : fleets) {
    if (fleet.ok) steps += fleet.result.telemetry.steps;
  }
  return steps;
}

engine::SweepReport PlaneReport::to_sweep_report() const {
  engine::SweepReport report;
  report.threads = workers;
  report.wall_s = wall_s;
  report.jobs.reserve(fleets.size());
  for (const FleetResult& fleet : fleets) {
    engine::JobResult job;
    job.name = fleet.id;
    job.ok = fleet.ok;
    job.error = fleet.error;
    if (fleet.ok) {
      job.policy = fleet.result.summary.policy;
      job.summary = fleet.result.summary;
      job.telemetry = fleet.result.telemetry;
      job.trace = fleet.result.trace;
    }
    report.jobs.push_back(std::move(job));
  }
  return report;
}

JsonValue PlaneReport::to_json() const {
  JsonValue::Object plane;
  plane.emplace("workers", static_cast<double>(workers));
  plane.emplace("wall_s", wall_s);
  plane.emplace("steals", static_cast<double>(steals));
  JsonValue::Object cache;
  cache.emplace("hits", static_cast<double>(factor_cache_hits));
  cache.emplace("misses", static_cast<double>(factor_cache_misses));
  plane.emplace("factor_cache", JsonValue(std::move(cache)));
  JsonValue::Array fleet_stats;
  for (const FleetResult& fleet : fleets) {
    JsonValue::Object entry;
    entry.emplace("id", fleet.id);
    entry.emplace("ok", fleet.ok);
    if (!fleet.ok) entry.emplace("error", fleet.error);
    if (fleet.ok) {
      entry.emplace("completed", fleet.result.completed);
      entry.emplace("runtime", fleet.result.stats.to_json());
    }
    fleet_stats.push_back(JsonValue(std::move(entry)));
  }
  plane.emplace("fleets", JsonValue(std::move(fleet_stats)));
  if (admission) {
    JsonValue::Object entry = admission->summary_json().as_object();
    JsonValue::Object route_check;
    route_check.emplace("verified", admission_verified);
    route_check.emplace("violations",
                        static_cast<double>(admission_route_violations));
    entry.emplace("route_check", JsonValue(std::move(route_check)));
    plane.emplace("admission", JsonValue(std::move(entry)));
  }

  JsonValue::Object root;
  root.emplace("sweep", to_sweep_report().to_json());
  root.emplace("plane", JsonValue(std::move(plane)));
  return JsonValue(std::move(root));
}

ControlPlane::ControlPlane(std::vector<FleetSpec> fleets, PlaneOptions options)
    : options_(std::move(options)) {
  require(!fleets.empty(), "ControlPlane: need at least one fleet");
  require(options_.batch_events > 0,
          "ControlPlane: batch_events must be positive");
  workers_ = options_.workers > 0
                 ? options_.workers
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  factor_cache_ = options_.factor_cache
                      ? options_.factor_cache
                      : std::make_shared<solvers::CondensedFactorCache>();

  std::unordered_set<std::string> ids;
  fleets_.reserve(fleets.size());
  for (FleetSpec& spec : fleets) {
    require(!spec.id.empty(), "ControlPlane: fleet id must be non-empty");
    require(ids.insert(spec.id).second,
            "ControlPlane: duplicate fleet id '" + spec.id + "'");
    // The plane owns pacing (it free-runs); a per-fleet acceleration
    // would need one clock per fleet and is not supported here.
    spec.options.acceleration = 0.0;
    if (!spec.options.factor_cache) spec.options.factor_cache = factor_cache_;
    auto state = std::make_unique<FleetState>();
    state->result.id = spec.id;
    state->spec = std::move(spec);
    fleets_.push_back(std::move(state));
  }

  if (options_.admission && options_.admission->enabled()) {
    install_admission(*options_.admission);
  } else if (fleets_.front()->spec.scenario.admission.enabled()) {
    install_admission(fleets_.front()->spec.scenario.admission);
  }

  queues_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  for (std::size_t i = 0; i < fleets_.size(); ++i) {
    queues_[i % workers_]->fleets.push_back(i);
  }
  remaining_.store(fleets_.size());
}

ControlPlane::~ControlPlane() = default;

void ControlPlane::install_admission(admission::AdmissionSpec spec) {
  const core::Scenario& first = fleets_.front()->spec.scenario;
  for (const auto& fleet : fleets_) {
    const core::Scenario& scenario = fleet->spec.scenario;
    require(scenario.workload == first.workload,
            "ControlPlane: admission routing needs every fleet to share one "
            "workload source (fleet '" +
                fleet->spec.id + "' carries a different one)");
    require(scenario.start_time_s.value() == first.start_time_s.value() &&
                scenario.ts_s.value() == first.ts_s.value() &&
                scenario.duration_s.value() == first.duration_s.value(),
            "ControlPlane: admission routing needs every fleet on one "
            "start/ts/duration window (fleet '" +
                fleet->spec.id + "' differs)");
  }

  admission::AdmissionGrid grid;
  grid.start_s = first.start_time_s.value();
  grid.ts_s = first.ts_s.value();
  grid.steps = first.num_steps();
  std::vector<double> capacities;
  capacities.reserve(fleets_.size());
  for (const auto& fleet : fleets_) {
    double capacity_rps = 0.0;
    for (const auto& idc : fleet->spec.scenario.idcs) {
      capacity_rps += static_cast<double>(idc.max_servers) *
                      idc.power.service_rate.value();
    }
    capacities.push_back(capacity_rps);
  }
  admission_plan_ = std::make_shared<const admission::AdmissionPlan>(
      spec, first.workload, grid, std::move(capacities));

  // Each fleet now sees only its routed slice of the admitted stream.
  // The per-fleet scenario's own admission block is cleared: the routed
  // view has a different (local) portal space, and the plan already
  // owns the registry.
  for (std::size_t f = 0; f < fleets_.size(); ++f) {
    core::Scenario& scenario = fleets_[f]->spec.scenario;
    scenario.workload =
        std::make_shared<admission::RoutedWorkload>(admission_plan_, f);
    scenario.admission = admission::AdmissionSpec{};
  }
}

bool ControlPlane::pop_local(std::size_t worker, std::size_t& index) {
  WorkerQueue& queue = *queues_[worker];
  util::MutexLock lock(queue.mutex);
  if (queue.fleets.empty()) return false;
  index = queue.fleets.front();
  queue.fleets.pop_front();
  return true;
}

bool ControlPlane::steal(std::size_t worker, std::size_t& index) {
  for (std::size_t step = 1; step < workers_; ++step) {
    WorkerQueue& victim = *queues_[(worker + step) % workers_];
    util::MutexLock lock(victim.mutex);
    if (victim.fleets.empty()) continue;
    index = victim.fleets.back();
    victim.fleets.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ControlPlane::push_back(std::size_t worker, std::size_t index) {
  WorkerQueue& queue = *queues_[worker];
  util::MutexLock lock(queue.mutex);
  queue.fleets.push_back(index);
}

bool ControlPlane::process(FleetState& fleet) {
  const auto begin = clock_type::now();
  try {
    if (!fleet.session) {
      fleet.session = fleet.spec.checkpoint
                          ? std::make_unique<runtime::FleetSession>(
                                fleet.spec.scenario, fleet.spec.options,
                                *fleet.spec.checkpoint)
                          : std::make_unique<runtime::FleetSession>(
                                fleet.spec.scenario, fleet.spec.options);
    }
    // This worker owns the fleet exclusively between deque operations
    // (the deque mutex handoff is the fence), so it claims both
    // session halves for the quantum.
    runtime::FleetSession& session = *fleet.session;
    util::RoleGuard stream(session.stream_role());
    util::RoleGuard control(session.control_role());
    bool exhausted = false;
    for (std::size_t events = 0; events < options_.batch_events; ++events) {
      if (session.done() ||
          fleet.stop_requested.load(std::memory_order_relaxed)) {
        break;
      }
      const auto event = session.poll();
      if (!event) {
        exhausted = true;  // every stream drained (defensive; done()
        break;             // normally fires first)
      }
      session.apply(*event);
    }
    fleet.wall_s += seconds_between(begin, clock_type::now());
    if (session.done() || exhausted ||
        fleet.stop_requested.load(std::memory_order_relaxed)) {
      const bool completed =
          session.next_step() >= session.scenario().num_steps();
      fleet.result.result = session.finish(completed, fleet.wall_s);
      fleet.result.ok = true;
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    return false;
  } catch (const std::exception& e) {
    fleet.wall_s += seconds_between(begin, clock_type::now());
    fleet.result.ok = false;
    fleet.result.error = e.what();
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
}

void ControlPlane::worker_loop(std::size_t worker) {
  while (remaining_.load(std::memory_order_acquire) > 0) {
    std::size_t index = 0;
    if (!pop_local(worker, index) && !steal(worker, index)) {
      // Every runnable fleet is currently owned by another worker (or
      // the plane is draining). Yield until remaining_ hits zero.
      std::this_thread::yield();
      continue;
    }
    if (!process(*fleets_[index])) push_back(worker, index);
  }
}

PlaneReport ControlPlane::run() {
  require(!ran_, "ControlPlane::run: a plane instance runs once");
  ran_ = true;
  const auto run_begin = clock_type::now();

  std::vector<std::thread> pool;
  pool.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    pool.emplace_back([this, w] { worker_loop(w); });
  }
  for (std::thread& worker : pool) worker.join();
  run_done_ = true;

  PlaneReport report;
  report.workers = workers_;
  report.wall_s = seconds_between(run_begin, clock_type::now());
  report.steals = steals_.load();
  report.factor_cache_hits = factor_cache_->hits();
  report.factor_cache_misses = factor_cache_->misses();
  report.fleets.reserve(fleets_.size());
  for (const auto& fleet : fleets_) report.fleets.push_back(fleet->result);

  report.admission = admission_plan_;
  if (admission_plan_) {
    // Exactly-once conservation audit against the recorded traces.
    // Only meaningful when every fleet succeeded with a trace on clean
    // feeds (fault injection legitimately perturbs delivered demand).
    bool eligible = true;
    std::vector<const std::vector<std::vector<double>>*> series;
    series.reserve(fleets_.size());
    std::uint64_t steps_to_check = admission_plan_->grid().steps;
    for (const auto& fleet : fleets_) {
      if (!fleet->result.ok || !fleet->result.result.trace ||
          fleet->spec.options.workload_faults.any()) {
        eligible = false;
        break;
      }
      const auto& portal_rps = fleet->result.result.trace->portal_rps;
      series.push_back(&portal_rps);
      const std::uint64_t rows =
          portal_rps.empty() ? 0 : portal_rps.front().size();
      steps_to_check =
          std::min<std::uint64_t>(steps_to_check, rows > 0 ? rows - 1 : 0);
    }
    if (eligible) {
      const auto violations = admission::verify_exactly_once(
          *admission_plan_, series, steps_to_check);
      report.admission_verified = true;
      report.admission_route_violations = violations.size();
    }
  }
  return report;
}

bool ControlPlane::request_stop(const std::string& id) {
  for (const auto& fleet : fleets_) {
    if (fleet->spec.id == id) {
      fleet->stop_requested.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ControlPlane::request_stop_all() {
  for (const auto& fleet : fleets_) {
    fleet->stop_requested.store(true, std::memory_order_relaxed);
  }
}

runtime::RuntimeCheckpoint ControlPlane::checkpoint(
    const std::string& id) const {
  require(run_done_, "ControlPlane::checkpoint: valid after run() returns");
  for (const auto& fleet : fleets_) {
    if (fleet->spec.id != id) continue;
    require(fleet->session != nullptr,
            "ControlPlane::checkpoint: fleet '" + id + "' has no state");
    // Post-run(): the pool has joined, so the caller is the only thread
    // and may claim both session halves.
    util::RoleGuard stream(fleet->session->stream_role());
    util::RoleGuard control(fleet->session->control_role());
    return fleet->session->checkpoint();
  }
  throw InvalidArgument("ControlPlane::checkpoint: unknown fleet '" + id +
                        "'");
}

}  // namespace gridctl::controlplane
